// Package core assembles the paper's system under study: a base
// supercomputer (Mira) optionally extended with an intermittent ZCCloud
// partition, simulates a workload trace through the shared batch
// scheduler, and extracts the metrics the paper reports — average job
// wait time (overall, by job-size bin, by capability/capacity class, by
// on-time/late class), throughput, and per-partition utilization.
//
// This is the top of the stack: availability models come from
// internal/availability (periodic) or internal/stranded (SP-driven),
// workloads from internal/workload, and scheduling from internal/sched.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"zccloud/internal/availability"
	"zccloud/internal/cluster"
	"zccloud/internal/faults"
	"zccloud/internal/job"
	"zccloud/internal/obs"
	"zccloud/internal/sched"
	"zccloud/internal/sim"
)

// Partition names used throughout reporting.
const (
	MiraPartition = "mira"
	ZCPartition   = "zc"
)

// SystemConfig describes a Mira-ZCCloud deployment (paper, Figure 4).
type SystemConfig struct {
	// MiraNodes is the base system size; defaults to 49,152.
	MiraNodes int
	// ZCFactor sizes the ZCCloud partition as a multiple of Mira
	// (the paper's 1xMira, 2xMira, 4xMira). Zero means no ZCCloud.
	ZCFactor float64
	// ZCAvail drives the ZCCloud partition's power. Required when
	// ZCFactor > 0.
	ZCAvail availability.Model
	// Oracle selects the paper's window-aware scheduling; NonOracle
	// (kill/requeue) is the sensitivity variant. Default true is
	// expressed as !NonOracle to keep the zero value faithful.
	NonOracle bool
	// BackfillDepth bounds the scheduler's backfill scan (0 = unlimited).
	BackfillDepth int
	// DisableBackfill selects plain FCFS (ablation).
	DisableBackfill bool
	// PredictedWindow enables predictive admission in non-oracle mode:
	// the scheduler assumes every ZC window lasts this long from its
	// start (paper Section VIII's prediction direction).
	PredictedWindow sim.Duration
	// Predictor supersedes PredictedWindow with an age-aware window-end
	// predictor (e.g. internal/forecast's hazard model).
	Predictor sched.WindowPredictor
	// FCFS selects plain first-come-first-served queue ordering instead
	// of the default WFP utility (Cobalt's production policy at ALCF,
	// which favors long-waiting and capability jobs).
	FCFS bool
	// CheckpointInterval enables checkpoint/restart in non-oracle mode:
	// killed jobs resume from their last checkpoint.
	CheckpointInterval sim.Duration
	// CheckpointOverhead is the wall-clock stall per checkpoint taken.
	CheckpointOverhead sim.Duration
	// Faults, when non-nil, configures fault injection (node failures,
	// forecast error, brownouts) and the recovery policy. A config with
	// no active dimension leaves the run identical to a fault-free one.
	Faults *faults.Config
}

func (c SystemConfig) withDefaults() SystemConfig {
	if c.MiraNodes == 0 {
		c.MiraNodes = cluster.MiraNodes
	}
	return c
}

// Validate reports configuration errors.
func (c SystemConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.MiraNodes <= 0:
		return fmt.Errorf("core: mira nodes %d <= 0", c.MiraNodes)
	case c.ZCFactor < 0:
		return fmt.Errorf("core: zc factor %v < 0", c.ZCFactor)
	case c.ZCFactor > 0 && c.ZCAvail == nil:
		return fmt.Errorf("core: ZCFactor %v without an availability model", c.ZCFactor)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// BuildMachine constructs the cluster for a system config.
func BuildMachine(c SystemConfig) (*cluster.Machine, error) {
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return nil, err
	}
	parts := []*cluster.Partition{
		cluster.NewPartition(MiraPartition, c.MiraNodes, availability.AlwaysOn{}),
	}
	if c.ZCFactor > 0 {
		zcNodes := int(math.Round(c.ZCFactor * float64(c.MiraNodes)))
		parts = append(parts, cluster.NewPartition(ZCPartition, zcNodes, c.ZCAvail))
	}
	return cluster.NewMachine(parts...), nil
}

// RunConfig is one simulation run.
type RunConfig struct {
	System SystemConfig
	// Trace is the workload; jobs are reset before the run and carry
	// their outcomes afterwards.
	Trace *job.Trace
	// Deadline bounds the run; zero defaults to the trace span plus 90
	// days of drain time.
	Deadline sim.Time
	// Obs carries the telemetry and run-control hooks (event tracer,
	// metrics registry, progress reporter, cooperative interrupt,
	// invariant checking); the zero value disables all of them.
	Obs obs.Options
	// StopAt, when positive, interrupts the run before any event later
	// than this simulated time — the deterministic snapshot point behind
	// zccsim's -snapshot-at.
	StopAt sim.Time
}

// Interrupted is returned by Run and Resume when the run was paused by
// Obs.Interrupt or StopAt. It carries the scheduler snapshot taken at
// the pause point; persist it (internal/persist) and pass it to Resume
// to continue the run byte-identically.
type Interrupted struct {
	Snapshot *sched.Snapshot
}

func (e *Interrupted) Error() string {
	return "core: run interrupted; snapshot captured"
}

// Unwrap lets errors.Is(err, sched.ErrInterrupted) recognize the pause.
func (e *Interrupted) Unwrap() error { return sched.ErrInterrupted }

// SizeBin is one job-size bucket of Figure 5.
type SizeBin struct {
	Label      string
	MaxNodes   int // inclusive upper bound of the bin
	Jobs       int
	AvgWaitHrs float64
}

// sizeBinBounds are the Figure 5 node-count bins (upper bounds).
var sizeBinBounds = []int{511, 1024, 2048, 4096, 8192, 16384, 32768, 49152}

// Metrics is everything the paper's figures read off one run.
type Metrics struct {
	Completed  int
	Unfinished int
	Unrunnable int
	// Fault-layer outcomes (zero without fault injection).
	Abandoned    int
	Killed       int
	NodeFailures int
	Brownouts    int
	// BackingOff counts jobs still waiting out a retry backoff when the
	// run hit its deadline: starved by the backoff schedule, neither
	// queued nor running, and included in Unfinished.
	BackingOff int

	// WorkloadCompleted is false when the system lacked the node-hour
	// capacity to finish the trace by the deadline (the paper's "X").
	WorkloadCompleted bool

	AvgWaitHrs float64
	P50WaitHrs float64
	P90WaitHrs float64
	MaxWaitHrs float64

	// AvgWaitBySize has one entry per Figure 5 size bin.
	AvgWaitBySize []SizeBin
	// Class splits: capability (>8k nodes) vs capacity.
	AvgWaitCapabilityHrs float64
	AvgWaitCapacityHrs   float64
	// Timeliness splits (only populated when a ZC partition exists).
	AvgWaitOnTimeHrs float64
	AvgWaitLateHrs   float64
	OnTimeJobs       int
	LateJobs         int

	// ThroughputJobsPerDay is completed jobs per simulated day of the
	// workload span.
	ThroughputJobsPerDay float64
	// NodeHoursByPartition is delivered node-hours per partition.
	NodeHoursByPartition map[string]float64
	// UtilizationByPartition is delivered node-hours over available
	// node-hours (availability-adjusted capacity) per partition.
	UtilizationByPartition map[string]float64
	// ZCShareOfWork is the fraction of delivered node-hours that ran on
	// ZCCloud.
	ZCShareOfWork float64

	MakespanDays float64
}

// buildSched assembles the scheduler configuration shared by Run and
// Resume: machine, fresh engine, policy, fault injector, and the
// telemetry/control hooks.
func buildSched(cfg RunConfig, sys SystemConfig) (sched.Config, *cluster.Machine, error) {
	machine, err := BuildMachine(sys)
	if err != nil {
		return sched.Config{}, nil, err
	}
	policy := sched.WFP
	if sys.FCFS {
		policy = sched.FCFS
	}
	// Run correlation: bind the run ID to every log line the scheduler
	// emits and stamp it on every trace event, so a run's full lifecycle
	// is reconstructable from either stream by run_id alone.
	logger := cfg.Obs.Log
	if cfg.Obs.RunID != "" {
		logger = logger.With("run_id", cfg.Obs.RunID)
	}
	scfg := sched.Config{
		Machine:            machine,
		Engine:             sim.New(),
		Policy:             policy,
		Oracle:             !sys.NonOracle,
		BackfillDepth:      sys.BackfillDepth,
		DisableBackfill:    sys.DisableBackfill,
		PredictedWindow:    sys.PredictedWindow,
		Predictor:          sys.Predictor,
		CheckpointInterval: sys.CheckpointInterval,
		CheckpointOverhead: sys.CheckpointOverhead,
		Tracer:             obs.TagRun(cfg.Obs.Tracer, cfg.Obs.RunID),
		Log:                logger,
		Metrics:            cfg.Obs.Metrics,
		Progress:           cfg.Obs.Progress,
		Status:             cfg.Obs.Status,
		Check:              cfg.Obs.Check,
		Interrupt:          cfg.Obs.Interrupt,
		StopAt:             cfg.StopAt,
	}
	if sys.ZCFactor > 0 {
		scfg.Classify = sys.ZCAvail
	}
	if sys.Faults != nil {
		inj, err := faults.New(*sys.Faults)
		if err != nil {
			return sched.Config{}, nil, fmt.Errorf("core: %w", err)
		}
		scfg.Faults = inj
	}
	return scfg, machine, nil
}

// finishRun drives the scheduler to the deadline and turns the outcome
// into Metrics, converting an interruption (Obs.Interrupt, StopAt, or
// ctx cancellation) into an *Interrupted error carrying the snapshot.
func finishRun(ctx context.Context, s *sched.Scheduler, deadline sim.Time,
	machine *cluster.Machine, jobs []*job.Job, obsOpts obs.Options) (*Metrics, error) {
	logger := runLogger(obsOpts)
	logger.Info("run started", "jobs", len(jobs), "deadline_days", float64(deadline)/float64(sim.Day))
	obsOpts.Status.SetPhase("simulate")
	span := obsOpts.Timings.Start("run.simulate")
	res, err := s.RunContext(ctx, deadline)
	span.Stop()
	if errors.Is(err, sched.ErrInterrupted) {
		snap, serr := s.Snapshot()
		if serr != nil {
			return nil, serr
		}
		logger.Info("run interrupted", "pending_events", len(snap.Pending))
		return nil, &Interrupted{Snapshot: snap}
	}
	if err != nil {
		logger.Error("run failed", "err", err.Error())
		return nil, err
	}
	span = obsOpts.Timings.Start("run.collect")
	defer span.Stop()
	m := collectMetrics(res, machine, jobs, obsOpts)
	logger.Info("run finished", "completed", m.Completed, "unfinished", m.Unfinished,
		"makespan_days", m.MakespanDays, "avg_wait_hrs", m.AvgWaitHrs)
	return m, nil
}

// runLogger binds the run ID (when set) to the run's logger, mirroring
// the binding buildSched hands the scheduler.
func runLogger(o obs.Options) *obs.Logger {
	if o.RunID == "" {
		return o.Log
	}
	return o.Log.With("run_id", o.RunID)
}

// Run simulates one configuration and extracts metrics. When the run is
// paused (Obs.Interrupt or StopAt) the error is an *Interrupted carrying
// a snapshot for Resume.
func Run(cfg RunConfig) (*Metrics, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: cancelling ctx pauses the
// simulation at the next event-stride boundary exactly as Obs.Interrupt
// does, returning an *Interrupted that carries a resume snapshot. An
// uncancellable context costs the hot loop nothing.
func RunContext(ctx context.Context, cfg RunConfig) (*Metrics, error) {
	if cfg.Trace == nil || len(cfg.Trace.Jobs) == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	sys := cfg.System.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	span := cfg.Obs.Timings.Start("run.setup")
	scfg, machine, err := buildSched(cfg, sys)
	if err != nil {
		span.Stop()
		return nil, err
	}
	cfg.Trace.Reset()

	_, last := cfg.Trace.Span()
	deadline := cfg.Deadline
	if deadline == 0 {
		deadline = last + 90*sim.Day
	}
	s, err := sched.New(scfg)
	if err != nil {
		span.Stop()
		return nil, err
	}
	if err := s.LoadTrace(cfg.Trace); err != nil {
		span.Stop()
		return nil, err
	}
	span.Stop()
	return finishRun(ctx, s, deadline, machine, cfg.Trace.Jobs, cfg.Obs)
}

// Resume continues a run from a snapshot taken by an interrupted Run
// (or Resume). cfg must describe the same system the snapshot came from
// — sched.Restore verifies the configuration fingerprint — but
// cfg.Trace is ignored: the snapshot carries the full job state, and
// the returned Metrics are computed from it. The continued run is
// byte-identical to one that was never interrupted.
func Resume(cfg RunConfig, snap *sched.Snapshot) (*Metrics, error) {
	return ResumeContext(context.Background(), cfg, snap)
}

// ResumeContext is Resume under a context; a resumed run can itself be
// cancelled and re-snapshotted any number of times.
func ResumeContext(ctx context.Context, cfg RunConfig, snap *sched.Snapshot) (*Metrics, error) {
	sys := cfg.System.withDefaults()
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	span := cfg.Obs.Timings.Start("run.setup")
	scfg, machine, err := buildSched(cfg, sys)
	if err != nil {
		span.Stop()
		return nil, err
	}
	s, err := sched.Restore(scfg, snap)
	if err != nil {
		span.Stop()
		return nil, err
	}
	span.Stop()
	return finishRun(ctx, s, snap.Deadline, machine, s.Jobs(), cfg.Obs)
}

// collectMetrics extracts everything the paper's figures read off one
// completed run. jobs is the authoritative job set: the original trace
// for a straight run, the scheduler's restored copies for a resumed one.
func collectMetrics(res sched.Result, machine *cluster.Machine, jobs []*job.Job, obsOpts obs.Options) *Metrics {
	var first, last sim.Time
	for i, j := range jobs {
		if i == 0 || j.Submit < first {
			first = j.Submit
		}
		if j.Submit > last {
			last = j.Submit
		}
	}

	m := &Metrics{
		Completed:            res.Completed,
		Unfinished:           res.Unfinished,
		Unrunnable:           res.Unrunnable,
		Abandoned:            res.Abandoned,
		BackingOff:           res.BackingOff,
		Killed:               res.Killed,
		NodeFailures:         res.NodeFailures,
		Brownouts:            res.Brownouts,
		WorkloadCompleted:    res.Unfinished == 0,
		NodeHoursByPartition: res.NodeHoursByPartition,
	}

	// Run-level metrics: completion counters and the wait-time
	// distribution (all handles are nil-safe no-ops without a registry).
	runScope := obsOpts.Metrics.Scope("run")
	runScope.Counter("simulations").Inc()
	runScope.Counter("jobs_completed").Add(int64(res.Completed))
	runScope.Counter("jobs_unfinished").Add(int64(res.Unfinished))
	runScope.Counter("jobs_unrunnable").Add(int64(res.Unrunnable))
	waitHist := runScope.Histogram("wait_hours", 0, 168, 42)

	waits := make([]float64, 0, res.Completed)
	var bySize []accum
	for range sizeBinBounds {
		bySize = append(bySize, accum{})
	}
	var capab, capac, onTime, late accum
	for _, j := range jobs {
		if !j.Completed {
			continue
		}
		w := j.Wait().Hours()
		waitHist.Observe(w)
		waits = append(waits, w)
		bin := sizeBinIndex(j.Nodes)
		bySize[bin].add(w)
		if j.Class() == job.ClassCapability {
			capab.add(w)
		} else {
			capac.add(w)
		}
		switch j.Timeliness {
		case job.OnTime:
			onTime.add(w)
		case job.Late:
			late.add(w)
		}
	}
	if len(waits) > 0 {
		sort.Float64s(waits)
		sum := 0.0
		for _, w := range waits {
			sum += w
		}
		m.AvgWaitHrs = sum / float64(len(waits))
		m.P50WaitHrs = waits[len(waits)/2]
		m.P90WaitHrs = waits[int(float64(len(waits))*0.9)]
		m.MaxWaitHrs = waits[len(waits)-1]
	}
	for i, b := range bySize {
		lo := 1
		if i > 0 {
			lo = sizeBinBounds[i-1] + 1
		}
		m.AvgWaitBySize = append(m.AvgWaitBySize, SizeBin{
			Label:      fmt.Sprintf("%d-%d", lo, sizeBinBounds[i]),
			MaxNodes:   sizeBinBounds[i],
			Jobs:       b.n,
			AvgWaitHrs: b.mean(),
		})
	}
	m.AvgWaitCapabilityHrs = capab.mean()
	m.AvgWaitCapacityHrs = capac.mean()
	m.AvgWaitOnTimeHrs = onTime.mean()
	m.AvgWaitLateHrs = late.mean()
	m.OnTimeJobs = onTime.n
	m.LateJobs = late.n

	spanDays := float64(last-first) / float64(sim.Day)
	if spanDays > 0 {
		m.ThroughputJobsPerDay = float64(res.Completed) / spanDays
	}
	m.MakespanDays = float64(res.Makespan) / float64(sim.Day)

	// Utilization: delivered node-hours over availability-adjusted
	// capacity across the active span [first, makespan].
	m.UtilizationByPartition = make(map[string]float64, len(machine.Partitions))
	activeEnd := res.Makespan
	if activeEnd <= first {
		activeEnd = last
	}
	var totalNH float64
	for _, p := range machine.Partitions {
		df := availability.DutyFactor(p.Avail, first, activeEnd)
		capNH := float64(p.Nodes) * (activeEnd - first).Hours() * df
		nh := res.NodeHoursByPartition[p.Name]
		totalNH += nh
		if capNH > 0 {
			m.UtilizationByPartition[p.Name] = nh / capNH
		}
	}
	if totalNH > 0 {
		m.ZCShareOfWork = res.NodeHoursByPartition[ZCPartition] / totalNH
	}
	return m
}

// sizeBinIndex maps a node count to its Figure 5 bin.
func sizeBinIndex(nodes int) int {
	for i, hi := range sizeBinBounds {
		if nodes <= hi {
			return i
		}
	}
	return len(sizeBinBounds) - 1
}

type accum struct {
	n   int
	sum float64
}

func (a *accum) add(x float64) { a.n++; a.sum += x }

func (a *accum) mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}
