package core

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"zccloud/internal/availability"
	"zccloud/internal/faults"
	"zccloud/internal/persist"
	"zccloud/internal/sched"
	"zccloud/internal/sim"
)

// resumeConfig is a faulted, kill/requeue-mode system — the hardest
// state to carry across a snapshot.
func resumeConfig(t *testing.T) RunConfig {
	t.Helper()
	return RunConfig{
		Trace: smallTrace(t, 11, 1),
		System: SystemConfig{
			ZCFactor:           1,
			ZCAvail:            availability.NewPeriodic(0.5, 20*sim.Hour),
			NonOracle:          true,
			CheckpointInterval: 2 * sim.Hour,
			Faults: &faults.Config{
				Seed:          21,
				ForecastErrSD: sim.Hour,
				BrownoutProb:  0.3,
				RetryLimit:    4,
				Backoff:       10 * sim.Minute,
			},
		},
	}
}

// TestRunResumeMatchesUninterrupted: interrupt a core run mid-flight,
// push the snapshot through the persist envelope (file on disk), resume
// in a fresh world, and require metrics identical to an uninterrupted
// run.
func TestRunResumeMatchesUninterrupted(t *testing.T) {
	want, err := Run(resumeConfig(t))
	if err != nil {
		t.Fatal(err)
	}

	cfg := resumeConfig(t)
	cfg.StopAt = 2 * sim.Day
	_, err = Run(cfg)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("err = %v, want *Interrupted", err)
	}
	if !errors.Is(err, sched.ErrInterrupted) {
		t.Error("Interrupted does not unwrap to sched.ErrInterrupted")
	}

	path := filepath.Join(t.TempDir(), "snap.json")
	if err := persist.SaveJSON(path, "zccloud-snapshot", sched.SnapshotVersion, intr.Snapshot); err != nil {
		t.Fatal(err)
	}
	var snap sched.Snapshot
	if err := persist.LoadJSON(path, "zccloud-snapshot", sched.SnapshotVersion, &snap); err != nil {
		t.Fatal(err)
	}

	cfg = resumeConfig(t)
	got, err := Resume(cfg, &snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("resumed metrics diverge:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestResumeRejectsDifferentSystem: resuming under a changed system
// (oracle mode flipped back on) must fail loudly.
func TestResumeRejectsDifferentSystem(t *testing.T) {
	cfg := resumeConfig(t)
	cfg.StopAt = 2 * sim.Day
	_, err := Run(cfg)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("err = %v, want *Interrupted", err)
	}
	other := resumeConfig(t)
	other.System.NonOracle = false
	if _, err := Resume(other, intr.Snapshot); err == nil {
		t.Fatal("Resume accepted a different system configuration")
	}
}

// TestResumeCanBeInterruptedAgain: chained pause points through the
// core API still converge to the uninterrupted metrics.
func TestResumeCanBeInterruptedAgain(t *testing.T) {
	want, err := Run(resumeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	cfg := resumeConfig(t)
	cfg.StopAt = sim.Day
	_, err = Run(cfg)
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("first pause: err = %v", err)
	}
	cfg = resumeConfig(t)
	cfg.StopAt = 3 * sim.Day
	_, err = Resume(cfg, intr.Snapshot)
	if !errors.As(err, &intr) {
		t.Fatalf("second pause: err = %v", err)
	}
	cfg = resumeConfig(t)
	got, err := Resume(cfg, intr.Snapshot)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("twice-resumed metrics diverge from uninterrupted run")
	}
}
