package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"

	"zccloud/internal/availability"
	"zccloud/internal/obs"
	"zccloud/internal/workload"
)

// tracedRun simulates a small kill/requeue-prone configuration with a
// JSONL tracer and returns the raw trace bytes plus the registry.
func tracedRun(t *testing.T, seed int64) ([]byte, obs.Snapshot) {
	t.Helper()
	tr, err := workload.Generate(workload.Config{Seed: seed, Days: 7, SystemNodes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONL(&buf)
	reg := obs.NewRegistry()
	_, err = Run(RunConfig{
		Trace: tr,
		System: SystemConfig{
			MiraNodes: 4096,
			ZCFactor:  1,
			ZCAvail:   availability.NewPeriodic(0.5, 0),
			NonOracle: true, // exercise kill/requeue events
		},
		Obs: obs.Options{Tracer: sink, Metrics: reg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg.Snapshot()
}

// TestTraceDeterminism is the acceptance check: two runs with the same
// seed emit byte-identical JSONL traces, and every line parses as JSON.
func TestTraceDeterminism(t *testing.T) {
	b1, snap := tracedRun(t, 11)
	b2, _ := tracedRun(t, 11)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("same-seed traces differ: %d vs %d bytes", len(b1), len(b2))
	}
	if len(b1) == 0 {
		t.Fatal("trace is empty")
	}
	sc := bufio.NewScanner(bytes.NewReader(b1))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines, kinds := 0, map[string]int{}
	for sc.Scan() {
		var rec struct {
			T  float64 `json:"t"`
			Ev string  `json:"ev"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable trace line %q: %v", sc.Text(), err)
		}
		if _, ok := obs.KindByName(rec.Ev); !ok {
			t.Fatalf("unknown event kind %q", rec.Ev)
		}
		kinds[rec.Ev]++
		lines++
	}
	for _, want := range []string{"arrive", "enqueue", "start", "finish", "window-up", "window-down"} {
		if kinds[want] == 0 {
			t.Errorf("trace has no %q events (kinds: %v)", want, kinds)
		}
	}
	// Different seed must give a different trace (guards against the
	// tracer ignoring its inputs).
	b3, _ := tracedRun(t, 12)
	if bytes.Equal(b1, b3) {
		t.Error("different seeds produced identical traces")
	}
	// Registry coverage: the run must have published the engine stats the
	// summary table reads.
	if snap.Counter("sim.events_dispatched") == 0 || snap.Gauge("sim.max_queue_len") == 0 {
		t.Errorf("engine stats missing from registry: %+v %+v", snap.Counters, snap.Gauges)
	}
	if snap.Counter("sched.jobs_started") == 0 {
		t.Errorf("sched counters missing: %+v", snap.Counters)
	}
	if snap.Histograms["run.wait_hours"].Count == 0 {
		t.Error("wait histogram not populated")
	}
}
