package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"zccloud/internal/availability"
	"zccloud/internal/job"
	"zccloud/internal/obs"
	"zccloud/internal/sim"
	"zccloud/internal/workload"
)

// smallTrace generates a week of workload scaled to a small machine.
func smallTrace(t *testing.T, seed int64, scale float64) *job.Trace {
	t.Helper()
	tr, err := workload.Generate(workload.Config{
		Seed:  seed,
		Days:  7,
		Scale: scale,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestValidate(t *testing.T) {
	bad := []SystemConfig{
		{MiraNodes: -1},
		{ZCFactor: -0.5},
		{ZCFactor: 1}, // no availability model
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
	if err := (SystemConfig{}).Validate(); err != nil {
		t.Errorf("default config: %v", err)
	}
}

func TestBuildMachine(t *testing.T) {
	m, err := BuildMachine(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Partition(MiraPartition) == nil || m.Partition(MiraPartition).Nodes != 49152 {
		t.Error("default machine should be Mira-sized")
	}
	if m.Partition(ZCPartition) != nil {
		t.Error("no ZC partition without ZCFactor")
	}

	m, err = BuildMachine(SystemConfig{
		ZCFactor: 2,
		ZCAvail:  availability.NewPeriodic(0.5, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if zc := m.Partition(ZCPartition); zc == nil || zc.Nodes != 2*49152 {
		t.Error("2xMira ZC partition wrong")
	}
}

func TestRunEmptyTrace(t *testing.T) {
	if _, err := Run(RunConfig{Trace: &job.Trace{}}); err == nil {
		t.Error("empty trace should fail")
	}
	if _, err := Run(RunConfig{Trace: nil}); err == nil {
		t.Error("nil trace should fail")
	}
}

func TestMiraOnlyBaseline(t *testing.T) {
	tr := smallTrace(t, 1, 1)
	m, err := Run(RunConfig{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !m.WorkloadCompleted {
		t.Fatalf("1xWorkload should complete on Mira: %+v", m)
	}
	if m.Completed != len(tr.Jobs)-m.Unrunnable {
		t.Errorf("completed %d of %d", m.Completed, len(tr.Jobs))
	}
	if m.AvgWaitHrs < 0 {
		t.Error("negative wait")
	}
	if m.UtilizationByPartition[MiraPartition] <= 0 ||
		m.UtilizationByPartition[MiraPartition] > 1.01 {
		t.Errorf("utilization = %v", m.UtilizationByPartition)
	}
	if m.ZCShareOfWork != 0 {
		t.Error("ZC share should be 0 without ZC")
	}
	if m.ThroughputJobsPerDay <= 0 {
		t.Error("throughput should be positive")
	}
}

// TestZCCloudReducesWait is the headline qualitative result (Figure 7):
// adding intermittent resources to the same workload cuts average wait.
func TestZCCloudReducesWait(t *testing.T) {
	tr := smallTrace(t, 2, 1.25) // somewhat loaded
	base, err := Run(RunConfig{Trace: tr.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	mz, err := Run(RunConfig{
		Trace: tr.Clone(),
		System: SystemConfig{
			ZCFactor: 1,
			ZCAvail:  availability.NewPeriodic(0.5, 20*sim.Hour),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("base wait %.2f h, M-Z wait %.2f h", base.AvgWaitHrs, mz.AvgWaitHrs)
	if mz.AvgWaitHrs >= base.AvgWaitHrs {
		t.Errorf("ZCCloud did not reduce wait: %.2f >= %.2f", mz.AvgWaitHrs, base.AvgWaitHrs)
	}
	if mz.ZCShareOfWork <= 0 {
		t.Error("ZC partition did no work")
	}
	if mz.OnTimeJobs+mz.LateJobs != mz.Completed+mz.Unfinished {
		t.Logf("classified %d+%d of %d jobs", mz.OnTimeJobs, mz.LateJobs, mz.Completed)
	}
	if mz.OnTimeJobs == 0 || mz.LateJobs == 0 {
		t.Error("both timeliness classes should be populated")
	}
}

func TestSizeBins(t *testing.T) {
	tr := smallTrace(t, 3, 1)
	m, err := Run(RunConfig{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.AvgWaitBySize) != len(sizeBinBounds) {
		t.Fatalf("bins = %d", len(m.AvgWaitBySize))
	}
	total := 0
	for _, b := range m.AvgWaitBySize {
		total += b.Jobs
		if b.AvgWaitHrs < 0 {
			t.Errorf("bin %s negative wait", b.Label)
		}
	}
	if total != m.Completed {
		t.Errorf("bin jobs sum %d != completed %d", total, m.Completed)
	}
	// percentiles ordered
	if m.P50WaitHrs > m.P90WaitHrs || m.P90WaitHrs > m.MaxWaitHrs {
		t.Errorf("percentiles out of order: %v %v %v", m.P50WaitHrs, m.P90WaitHrs, m.MaxWaitHrs)
	}
}

func TestSizeBinIndex(t *testing.T) {
	cases := []struct{ nodes, bin int }{
		{1, 0}, {511, 0}, {512, 1}, {1024, 1}, {1025, 2},
		{8192, 4}, {8193, 5}, {49152, 7}, {60000, 7},
	}
	for _, c := range cases {
		if got := sizeBinIndex(c.nodes); got != c.bin {
			t.Errorf("sizeBinIndex(%d) = %d, want %d", c.nodes, got, c.bin)
		}
	}
}

func TestOverloadMarksIncomplete(t *testing.T) {
	// 3x the workload on a bare Mira with a short deadline cannot finish.
	tr := smallTrace(t, 4, 3)
	_, last := tr.Span()
	m, err := Run(RunConfig{Trace: tr, Deadline: last})
	if err != nil {
		t.Fatal(err)
	}
	if m.WorkloadCompleted {
		t.Error("3xWorkload with no drain time should not complete")
	}
	if m.Unfinished == 0 {
		t.Error("expected unfinished jobs")
	}
}

func TestDeterministicMetrics(t *testing.T) {
	tr := smallTrace(t, 5, 1)
	run := func() *Metrics {
		m, err := Run(RunConfig{
			Trace: tr.Clone(),
			System: SystemConfig{
				ZCFactor: 1,
				ZCAvail:  availability.NewPeriodic(0.25, 0),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := run(), run()
	if a.AvgWaitHrs != b.AvgWaitHrs || a.Completed != b.Completed ||
		a.ZCShareOfWork != b.ZCShareOfWork {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestNonOracleRuns(t *testing.T) {
	tr := smallTrace(t, 6, 1)
	m, err := Run(RunConfig{
		Trace: tr,
		System: SystemConfig{
			ZCFactor:  1,
			ZCAvail:   availability.NewPeriodic(0.5, 0),
			NonOracle: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Error("non-oracle run completed nothing")
	}
}

// ctxCancelTracer cancels a context after n traced events: deterministic
// mid-run cancellation driven by the simulation itself.
type ctxCancelTracer struct {
	after  int
	seen   int
	cancel context.CancelFunc
}

func (c *ctxCancelTracer) Trace(obs.Event) {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
}

// TestRunContextCancelAndResume: a context-cancelled run returns
// *Interrupted with a usable snapshot, and resuming it yields the same
// metrics as a run that was never cancelled.
func TestRunContextCancelAndResume(t *testing.T) {
	tr := smallTrace(t, 3, 1)
	want, err := Run(RunConfig{Trace: tr.Clone()})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = RunContext(ctx, RunConfig{
		Trace: tr.Clone(),
		Obs:   obs.Options{Tracer: &ctxCancelTracer{after: 500, cancel: cancel}},
	})
	var intr *Interrupted
	if !errors.As(err, &intr) {
		t.Fatalf("cancelled run err = %v, want *Interrupted", err)
	}
	if intr.Snapshot == nil {
		t.Fatal("interrupted run carried no snapshot")
	}
	got, err := Resume(RunConfig{Trace: tr.Clone()}, intr.Snapshot)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("resumed metrics differ:\n got %+v\nwant %+v", got, want)
	}

	// A context dead before the run starts interrupts before any event.
	dead, cancelDead := context.WithCancel(context.Background())
	cancelDead()
	if _, err := RunContext(dead, RunConfig{Trace: tr.Clone()}); !errors.As(err, &intr) {
		t.Fatalf("dead-context run err = %v, want *Interrupted", err)
	}
}
