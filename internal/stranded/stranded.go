// Package stranded implements the ZCCloud paper's stranded-power (SP)
// analysis (Section V): identifying, per generation site, the intervals
// during which grid power has little or no economic value, and deriving
// the metrics that determine whether those intervals can host computing —
// duty factor, interval durations, and average stranded megawatts.
//
// Two model families are supported (paper, Table V):
//
//	LMP[x]      — SP available in any 5-minute interval with LMP < $x.
//	NetPrice[x] — SP available over a maximal run of intervals whose
//	              power-weighted average price stays below $x; deep
//	              negative prices let a run extend through short
//	              positive-price stretches (paper, Figure 10).
//
// Analyzers are online: they consume records one at a time, so a
// 28-month × 200-site dataset streams through without materializing.
package stranded

import (
	"fmt"
	"sort"

	"zccloud/internal/availability"
	"zccloud/internal/miso"
	"zccloud/internal/sim"
)

// ModelKind distinguishes the two SP definition families.
type ModelKind int

// SP model families (paper, Table V).
const (
	LMP ModelKind = iota
	NetPrice
)

// Model is one SP definition: a family and a price threshold in $/MWh.
type Model struct {
	Kind      ModelKind
	Threshold float64
}

// String formats like the paper: "LMP0", "NetPrice5".
func (m Model) String() string {
	k := "LMP"
	if m.Kind == NetPrice {
		k = "NetPrice"
	}
	return fmt.Sprintf("%s%g", k, m.Threshold)
}

// PaperModels are the four models Section VI evaluates.
var PaperModels = []Model{
	{LMP, 0}, {LMP, 5}, {NetPrice, 0}, {NetPrice, 5},
}

// Interval is one stranded-power interval of a site.
type Interval struct {
	Start, End int64 // 5-minute interval indices, half-open [Start, End)
	// AvgMW is the mean delivered power over the interval — power sold at
	// worthless prices, available to a co-located load instead.
	AvgMW float64
	// AvgCurtailedMW is the mean dispatch-down amount over the interval.
	AvgCurtailedMW float64
	// AvgAvailableMW is the mean offered power (economic max) — what a
	// co-located ZCCloud could draw: delivered plus curtailed.
	AvgAvailableMW float64
	// NetPrice is the power-weighted mean LMP over the interval.
	NetPrice float64
}

// Len returns the interval length in 5-minute steps.
func (iv Interval) Len() int64 { return iv.End - iv.Start }

// Hours returns the interval duration in hours.
func (iv Interval) Hours() float64 {
	return float64(iv.Len()) * miso.IntervalMinutes / 60
}

// MaxBridgeSteps bounds how many consecutive records a NetPrice run may
// tentatively hold above threshold before giving up (24 hours of 5-minute
// intervals). The paper's long NetPrice intervals — some beyond 24 hours
// (Section VI) — arise from deep negative nighttime prices outweighing
// mildly positive daytime stretches in the power-weighted average; a full
// day above threshold without recovery closes the run.
const MaxBridgeSteps = 288

// rec is one buffered market observation.
type rec struct {
	interval int64
	lmp      float64
	mw       float64
	maxMW    float64
}

// runAccum accumulates a (committed) run.
type runAccum struct {
	start     int64
	end       int64 // exclusive
	sumPxMWh  float64
	sumMWh    float64
	sumMW     float64
	sumCurtMW float64
	sumP      float64
	n         int64
}

func (r *runAccum) add(x rec) {
	energy := x.mw * miso.IntervalMinutes / 60
	r.sumPxMWh += x.lmp * energy
	r.sumMWh += energy
	r.sumMW += x.mw
	r.sumCurtMW += x.maxMW - x.mw
	r.sumP += x.lmp
	r.n++
	r.end = x.interval + 1
}

// addAccum folds another accumulator in (used to commit the pending tail).
func (r *runAccum) addAccum(o runAccum) {
	r.sumPxMWh += o.sumPxMWh
	r.sumMWh += o.sumMWh
	r.sumMW += o.sumMW
	r.sumCurtMW += o.sumCurtMW
	r.sumP += o.sumP
	r.n += o.n
	if o.n > 0 {
		r.end = o.end
	}
}

func (r *runAccum) mean() float64 {
	if r.sumMWh > 0 {
		return r.sumPxMWh / r.sumMWh
	}
	if r.n > 0 {
		return r.sumP / float64(r.n)
	}
	return 0
}

func (r *runAccum) interval() Interval {
	return Interval{
		Start:          r.start,
		End:            r.end,
		AvgMW:          r.sumMW / float64(r.n),
		AvgCurtailedMW: r.sumCurtMW / float64(r.n),
		AvgAvailableMW: (r.sumMW + r.sumCurtMW) / float64(r.n),
		NetPrice:       r.mean(),
	}
}

// SiteAnalyzer extracts SP intervals for one site under one model. Feed
// records in interval order with Observe, then Finish (or Stats).
//
// For NetPrice models the analyzer commits records to the current run only
// while the run's power-weighted mean price stays below the threshold;
// records that push the mean above it are held in a pending buffer of at
// most MaxBridgeSteps. If later deep-negative records pull the cumulative
// mean back under, the pending records are absorbed (the bridging effect);
// otherwise the run closes at its last good record and the pending records
// are rescanned as fresh input. Every emitted interval therefore satisfies
// the NetPrice bound exactly, over the actual records it spans.
type SiteAnalyzer struct {
	model Model
	minMW float64

	intervals []Interval
	observed  int64

	open    bool
	run     runAccum // committed prefix of the current run
	pend    []rec    // tentative tail (NetPrice only)
	pendSum runAccum // running sums of pend, kept in lockstep
	last    int64
}

// NewSiteAnalyzer creates an analyzer for one site.
func NewSiteAnalyzer(model Model) *SiteAnalyzer {
	return &SiteAnalyzer{model: model}
}

// NewSiteAnalyzerMin creates an analyzer that additionally requires at
// least minMW of offered power for SP to count: a record below the floor
// hard-breaks any run. Essential for solar sites, whose price can stay
// negative into the evening while the panels produce nothing — intervals
// without power cannot host computing.
func NewSiteAnalyzerMin(model Model, minMW float64) *SiteAnalyzer {
	return &SiteAnalyzer{model: model, minMW: minMW}
}

// Observe consumes the site's record for the next 5-minute interval.
// Records must arrive in increasing interval order.
func (a *SiteAnalyzer) Observe(interval int64, lmp, deliveredMW, economicMaxMW float64) {
	if a.open && interval != a.last+1 {
		a.closeRun() // a data gap closes any open run
	}
	a.observed++
	a.last = interval
	a.scan(rec{interval, lmp, deliveredMW, economicMaxMW})
}

// scan runs the state machine on one record (used for both live input and
// pending-buffer replays).
func (a *SiteAnalyzer) scan(x rec) {
	if a.minMW > 0 && x.maxMW < a.minMW {
		// No usable power: stranded or not, nothing can run here.
		a.closeRun()
		return
	}
	below := x.lmp < a.model.Threshold
	if a.model.Kind == LMP {
		switch {
		case below && !a.open:
			a.open = true
			a.run = runAccum{start: x.interval}
			a.run.add(x)
		case below:
			a.run.add(x)
		case a.open:
			a.closeRun()
		}
		return
	}
	// NetPrice
	if !a.open {
		if below { // first record's mean is its own price
			a.open = true
			a.run = runAccum{start: x.interval}
			a.run.add(x)
		}
		return
	}
	// Tentatively include the pending tail plus x; commit if the
	// cumulative power-weighted mean clears the threshold.
	trial := a.run
	trial.addAccum(a.pendSum)
	trial.add(x)
	if trial.mean() < a.model.Threshold {
		a.run = trial
		a.pend = a.pend[:0]
		a.pendSum = runAccum{}
		return
	}
	a.pend = append(a.pend, x)
	a.pendSum.add(x)
	if len(a.pend) > MaxBridgeSteps {
		a.flushPending()
	}
}

// flushPending closes the committed run and rescans the pending records.
func (a *SiteAnalyzer) flushPending() {
	pend := a.pend
	a.pend = nil
	a.pendSum = runAccum{}
	a.emit()
	a.open = false
	for _, p := range pend {
		a.scan(p)
	}
	// recycle the flushed slice for the (possibly re-grown) pending buffer
	if a.pend == nil {
		a.pend = pend[:0]
	}
}

// closeRun finalizes the current run; pending records are rescanned so a
// trailing stranded stretch inside them is not lost. Each flush emits a
// non-empty committed run and consumes at least one pending record, so
// the loop terminates.
func (a *SiteAnalyzer) closeRun() {
	for a.open {
		if len(a.pend) > 0 {
			a.flushPending()
			continue
		}
		a.emit()
		a.open = false
	}
}

func (a *SiteAnalyzer) emit() {
	if a.run.n == 0 {
		return
	}
	a.intervals = append(a.intervals, a.run.interval())
}

// Finish closes any open run and returns the site's SP intervals.
func (a *SiteAnalyzer) Finish() []Interval {
	a.closeRun()
	return a.intervals
}

// SiteStats are the per-site metrics of Section V.
type SiteStats struct {
	Site      int
	Model     Model
	Observed  int64 // intervals observed
	Intervals []Interval
	// DutyFactor is the fraction of observed time SP was available.
	DutyFactor float64
	// AvgSPMW is the time-weighted mean stranded power during SP
	// intervals — dispatch-down (economic max − delivered), the paper's
	// "power that is generated, but cannot be used" that a co-located
	// ZCCloud consumes.
	AvgSPMW float64
	// AvgDeliveredMW is the time-weighted mean cleared power during SP
	// intervals.
	AvgDeliveredMW float64
	// AvgAvailableMW is the time-weighted mean offered power (economic
	// max) during SP intervals.
	AvgAvailableMW float64
}

// Stats computes SiteStats from a finished analyzer.
func (a *SiteAnalyzer) Stats(site int) SiteStats {
	ivs := a.Finish()
	s := SiteStats{Site: site, Model: a.model, Observed: a.observed, Intervals: ivs}
	var up, mw, curt float64
	for _, iv := range ivs {
		l := float64(iv.Len())
		up += l
		mw += iv.AvgMW * l
		curt += iv.AvgCurtailedMW * l
	}
	if a.observed > 0 {
		s.DutyFactor = up / float64(a.observed)
	}
	if up > 0 {
		s.AvgDeliveredMW = mw / up
		s.AvgSPMW = curt / up
		s.AvgAvailableMW = (mw + curt) / up
	}
	return s
}

// Analysis runs all sites of a dataset against one model.
type Analysis struct {
	model Model
	sites []*SiteAnalyzer
}

// NewAnalysis creates per-site analyzers for nSites sites.
func NewAnalysis(model Model, nSites int) *Analysis {
	return NewAnalysisMin(model, nSites, 0)
}

// NewAnalysisMin creates per-site analyzers that require at least minMW
// of offered power for SP to count (see NewSiteAnalyzerMin).
func NewAnalysisMin(model Model, nSites int, minMW float64) *Analysis {
	a := &Analysis{model: model, sites: make([]*SiteAnalyzer, nSites)}
	for i := range a.sites {
		a.sites[i] = NewSiteAnalyzerMin(model, minMW)
	}
	return a
}

// Observe consumes one record.
func (a *Analysis) Observe(r miso.Record) {
	a.sites[r.Site].Observe(r.Interval, r.LMP, r.DeliveredMW, r.EconomicMaxMW)
}

// ObserveValues consumes one observation for an explicit site index —
// used when the caller aggregates several units into one node.
func (a *Analysis) ObserveValues(site int, interval int64, lmp, deliveredMW, economicMaxMW float64) {
	a.sites[site].Observe(interval, lmp, deliveredMW, economicMaxMW)
}

// Results returns per-site stats sorted by descending duty factor
// (ties: ascending site id), the order Figures 11 and 12 accumulate in.
func (a *Analysis) Results() []SiteStats {
	out := make([]SiteStats, len(a.sites))
	for i, sa := range a.sites {
		out[i] = sa.Stats(i)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].DutyFactor != out[j].DutyFactor {
			return out[i].DutyFactor > out[j].DutyFactor
		}
		return out[i].Site < out[j].Site
	})
	return out
}

// DurationBucketsHours are the interval-duration histogram boundaries of
// Figure 10: <1 h, 1–6 h, 6–24 h, >24 h.
var DurationBucketsHours = []float64{1, 6, 24}

// DurationBreakdown returns, for a site's intervals, the fraction of SP
// intervals (by count, as Figure 10 plots) in each duration bucket.
func DurationBreakdown(ivs []Interval) []float64 {
	return durationFractions(ivs, func(Interval) float64 { return 1 })
}

// DurationTimeBreakdown returns the fraction of SP *time* in each
// Figure 10 duration bucket — the share of stranded hours that lives in
// long intervals, which is what matters to the scheduler.
func DurationTimeBreakdown(ivs []Interval) []float64 {
	return durationFractions(ivs, func(iv Interval) float64 { return iv.Hours() })
}

func durationFractions(ivs []Interval, weight func(Interval) float64) []float64 {
	sums := make([]float64, len(DurationBucketsHours)+1)
	var total float64
	for _, iv := range ivs {
		h := iv.Hours()
		b := sort.SearchFloat64s(DurationBucketsHours, h)
		if b < len(DurationBucketsHours) && DurationBucketsHours[b] == h {
			b++
		}
		w := weight(iv)
		sums[b] += w
		total += w
	}
	if total > 0 {
		for i := range sums {
			sums[i] /= total
		}
	}
	return sums
}

// CumulativeDutyFactor returns the union duty factor of the top-N sites
// (by individual duty factor) for N = 1..len(results): the fraction of
// observed time during which at least one of the N sites has SP (paper,
// Figure 11).
func CumulativeDutyFactor(results []SiteStats, observed int64) []float64 {
	out := make([]float64, len(results))
	covered := newIntervalSet()
	for i, st := range results {
		for _, iv := range st.Intervals {
			covered.add(iv.Start, iv.End)
		}
		if observed > 0 {
			out[i] = float64(covered.total()) / float64(observed)
		}
	}
	return out
}

// CumulativeAvgSPMW returns, for N = 1..len(results), the summed average
// stranded MW of the top-N sites (paper, Figure 12: total compute power a
// multi-site deployment could draw).
func CumulativeAvgSPMW(results []SiteStats) []float64 {
	out := make([]float64, len(results))
	sum := 0.0
	for i, st := range results {
		sum += st.AvgSPMW * st.DutyFactor // long-run average MW contribution
		out[i] = sum
	}
	return out
}

// Windows converts a site's SP intervals to availability windows in
// simulated seconds, for driving the ZCCloud partition (Section VI).
func Windows(ivs []Interval) []availability.Window {
	out := make([]availability.Window, 0, len(ivs))
	const step = miso.IntervalMinutes * 60 // seconds per market interval
	for _, iv := range ivs {
		out = append(out, availability.Window{
			Start: sim.Time(iv.Start * step),
			End:   sim.Time(iv.End * step),
		})
	}
	return out
}

// intervalSet accumulates a union of half-open int64 intervals.
type intervalSet struct {
	ivs []struct{ s, e int64 }
}

func newIntervalSet() *intervalSet { return &intervalSet{} }

func (s *intervalSet) add(start, end int64) {
	if end <= start {
		return
	}
	// binary search insertion point, then merge neighbors
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].s > start })
	// merge with predecessor if overlapping/adjacent
	if i > 0 && s.ivs[i-1].e >= start {
		i--
		if end <= s.ivs[i].e {
			return
		}
		start = s.ivs[i].s
	} else {
		s.ivs = append(s.ivs, struct{ s, e int64 }{})
		copy(s.ivs[i+1:], s.ivs[i:])
	}
	// extend over successors swallowed by [start, end)
	j := i + 1
	for j < len(s.ivs) && s.ivs[j].s <= end {
		if s.ivs[j].e > end {
			end = s.ivs[j].e
		}
		j++
	}
	s.ivs[i] = struct{ s, e int64 }{start, end}
	s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
}

func (s *intervalSet) total() int64 {
	var t int64
	for _, iv := range s.ivs {
		t += iv.e - iv.s
	}
	return t
}
