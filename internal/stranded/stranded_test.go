package stranded

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"zccloud/internal/miso"
)

func TestModelString(t *testing.T) {
	if (Model{LMP, 0}).String() != "LMP0" {
		t.Error("LMP0 name wrong")
	}
	if (Model{NetPrice, 5}).String() != "NetPrice5" {
		t.Error("NetPrice5 name wrong")
	}
	if len(PaperModels) != 4 {
		t.Error("paper evaluates four models")
	}
}

// observeSeq feeds a price sequence with constant 10 MW delivered, 12 MW max.
func observeSeq(a *SiteAnalyzer, prices []float64) {
	for i, p := range prices {
		a.Observe(int64(i), p, 10, 12)
	}
}

func TestLMPModelBasic(t *testing.T) {
	a := NewSiteAnalyzer(Model{LMP, 0})
	observeSeq(a, []float64{5, -1, -2, 3, -4, 5, 5})
	ivs := a.Finish()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v, want 2", ivs)
	}
	if ivs[0].Start != 1 || ivs[0].End != 3 {
		t.Errorf("first = [%d,%d), want [1,3)", ivs[0].Start, ivs[0].End)
	}
	if ivs[1].Start != 4 || ivs[1].End != 5 {
		t.Errorf("second = [%d,%d), want [4,5)", ivs[1].Start, ivs[1].End)
	}
	if ivs[0].AvgMW != 10 || ivs[0].AvgCurtailedMW != 2 {
		t.Errorf("power accounting wrong: %+v", ivs[0])
	}
}

func TestLMPThreshold(t *testing.T) {
	a := NewSiteAnalyzer(Model{LMP, 5})
	observeSeq(a, []float64{4.9, 5.0, 5.1, 2})
	ivs := a.Finish()
	// LMP < 5 strictly: records 0 and 3
	if len(ivs) != 2 || ivs[0].Len() != 1 || ivs[1].Len() != 1 {
		t.Fatalf("intervals = %+v", ivs)
	}
}

func TestNetPriceExtendsThroughPositive(t *testing.T) {
	// Deep negatives let the run absorb short positive stretches: this is
	// the mechanism behind Figure 10's long NetPrice intervals.
	a := NewSiteAnalyzer(Model{NetPrice, 0})
	observeSeq(a, []float64{-30, -30, 10, 5, -30, -30})
	ivs := a.Finish()
	if len(ivs) != 1 {
		t.Fatalf("intervals = %+v, want one merged run", ivs)
	}
	if ivs[0].Len() != 6 {
		t.Errorf("run length = %d, want 6", ivs[0].Len())
	}
	if ivs[0].NetPrice >= 0 {
		t.Errorf("net price = %v, want negative", ivs[0].NetPrice)
	}
}

func TestNetPriceRejectsWhenAverageCrosses(t *testing.T) {
	a := NewSiteAnalyzer(Model{NetPrice, 0})
	observeSeq(a, []float64{-1, 50, -1})
	ivs := a.Finish()
	// the +50 forces the mean positive: run closes at [0,1), new run at [2,3)
	if len(ivs) != 2 || ivs[0].Len() != 1 || ivs[1].Len() != 1 {
		t.Fatalf("intervals = %+v", ivs)
	}
}

func TestNetPriceIntervalInvariant(t *testing.T) {
	// Property: every emitted NetPrice interval has power-weighted mean
	// price below threshold.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewSiteAnalyzer(Model{NetPrice, 0})
		for i := 0; i < 2000; i++ {
			lmp := -40 + 80*r.Float64()
			mw := 50 * r.Float64()
			a.Observe(int64(i), lmp, mw, mw*1.2)
		}
		for _, iv := range a.Finish() {
			if iv.NetPrice >= 0 {
				return false
			}
			if iv.End <= iv.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIntervalsDisjointSorted(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for _, m := range PaperModels {
			a := NewSiteAnalyzer(m)
			for i := 0; i < 1500; i++ {
				a.Observe(int64(i), -30+60*r.Float64(), 20*r.Float64(), 25)
			}
			ivs := a.Finish()
			for k := 1; k < len(ivs); k++ {
				if ivs[k].Start < ivs[k-1].End {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestMinPowerGuard(t *testing.T) {
	// Negative prices persist but power vanishes (solar at dusk): the run
	// must break at the zero-power record even though LMP stays negative.
	a := NewSiteAnalyzerMin(Model{NetPrice, 0}, 1)
	seq := []struct{ lmp, mw float64 }{
		{-20, 50}, {-20, 40}, {-20, 0}, {-20, 0}, {-20, 30},
	}
	for i, r := range seq {
		a.Observe(int64(i), r.lmp, r.mw, r.mw)
	}
	ivs := a.Finish()
	if len(ivs) != 2 {
		t.Fatalf("intervals = %+v, want 2 (zero-power break)", ivs)
	}
	if ivs[0].End != 2 || ivs[1].Start != 4 {
		t.Errorf("boundaries wrong: %+v", ivs)
	}

	// Without the guard, the same sequence bridges (zero-weight records
	// do not move the power-weighted mean).
	b := NewSiteAnalyzer(Model{NetPrice, 0})
	for i, r := range seq {
		b.Observe(int64(i), r.lmp, r.mw, r.mw)
	}
	if got := b.Finish(); len(got) != 1 {
		t.Fatalf("unguarded analyzer should bridge: %+v", got)
	}
}

func TestGapClosesRun(t *testing.T) {
	a := NewSiteAnalyzer(Model{LMP, 0})
	a.Observe(0, -1, 10, 10)
	a.Observe(1, -1, 10, 10)
	a.Observe(5, -1, 10, 10) // data gap
	ivs := a.Finish()
	if len(ivs) != 2 {
		t.Fatalf("gap should split runs: %+v", ivs)
	}
}

func TestStatsDutyFactor(t *testing.T) {
	a := NewSiteAnalyzer(Model{LMP, 0})
	observeSeq(a, []float64{-1, -1, 5, 5, -1, 5, 5, 5, 5, 5}) // 3 of 10 stranded
	st := a.Stats(7)
	if st.Site != 7 || st.Observed != 10 {
		t.Errorf("stats header wrong: %+v", st)
	}
	if math.Abs(st.DutyFactor-0.3) > 1e-12 {
		t.Errorf("duty factor = %v, want 0.3", st.DutyFactor)
	}
	if st.AvgDeliveredMW != 10 {
		t.Errorf("avg delivered MW = %v, want 10", st.AvgDeliveredMW)
	}
	if st.AvgSPMW != 2 {
		t.Errorf("avg SP MW = %v, want 2 (curtailment)", st.AvgSPMW)
	}
	if st.AvgAvailableMW != 12 {
		t.Errorf("avg available MW = %v, want 12 (economic max)", st.AvgAvailableMW)
	}
}

func TestAnalysisOrdering(t *testing.T) {
	an := NewAnalysis(Model{LMP, 0}, 3)
	// site 0: never stranded; site 1: always; site 2: half
	for i := int64(0); i < 10; i++ {
		an.Observe(miso.Record{Interval: i, Site: 0, LMP: 10, DeliveredMW: 5, EconomicMaxMW: 5})
		an.Observe(miso.Record{Interval: i, Site: 1, LMP: -5, DeliveredMW: 5, EconomicMaxMW: 5})
		lmp := 10.0
		if i%2 == 0 {
			lmp = -5
		}
		an.Observe(miso.Record{Interval: i, Site: 2, LMP: lmp, DeliveredMW: 5, EconomicMaxMW: 5})
	}
	res := an.Results()
	if res[0].Site != 1 || res[1].Site != 2 || res[2].Site != 0 {
		t.Fatalf("ordering wrong: %v %v %v", res[0].Site, res[1].Site, res[2].Site)
	}
	if res[0].DutyFactor != 1 || res[2].DutyFactor != 0 {
		t.Errorf("duty factors wrong: %+v", res)
	}
}

func TestDurationBreakdown(t *testing.T) {
	// 0.5h (6 steps), 2h (24 steps), 48h (576 steps)
	ivs := []Interval{
		{Start: 0, End: 6},
		{Start: 100, End: 124},
		{Start: 1000, End: 1576},
	}
	// by count: one interval in each of <1h, 1-6h, >24h
	fr := DurationBreakdown(ivs)
	third := 1.0 / 3
	wantCount := []float64{third, third, 0, third}
	for i := range wantCount {
		if math.Abs(fr[i]-wantCount[i]) > 1e-12 {
			t.Errorf("count bucket %d = %v, want %v", i, fr[i], wantCount[i])
		}
	}
	// by time
	ft := DurationTimeBreakdown(ivs)
	total := 0.5 + 2 + 48
	wantTime := []float64{0.5 / total, 2 / total, 0, 48 / total}
	for i := range wantTime {
		if math.Abs(ft[i]-wantTime[i]) > 1e-12 {
			t.Errorf("time bucket %d = %v, want %v", i, ft[i], wantTime[i])
		}
	}
	if got := DurationBreakdown(nil); got[0] != 0 {
		t.Error("empty breakdown should be zeros")
	}
}

func TestCumulativeDutyFactor(t *testing.T) {
	results := []SiteStats{
		{Site: 0, Intervals: []Interval{{Start: 0, End: 50}}},
		{Site: 1, Intervals: []Interval{{Start: 25, End: 75}}},
		{Site: 2, Intervals: []Interval{{Start: 90, End: 100}}},
	}
	cum := CumulativeDutyFactor(results, 100)
	want := []float64{0.5, 0.75, 0.85}
	for i := range want {
		if math.Abs(cum[i]-want[i]) > 1e-12 {
			t.Errorf("cum[%d] = %v, want %v", i, cum[i], want[i])
		}
	}
}

// Property: cumulative duty factor is nondecreasing and bounded by 1, and
// by the sum of individual duty factors.
func TestCumulativeDutyFactorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var results []SiteStats
		const observed = 1000
		for s := 0; s < 8; s++ {
			var ivs []Interval
			at := int64(0)
			for at < observed {
				at += int64(r.Intn(200))
				ln := int64(1 + r.Intn(100))
				if at >= observed {
					break
				}
				end := at + ln
				if end > observed {
					end = observed
				}
				ivs = append(ivs, Interval{Start: at, End: end})
				at = end + 1
			}
			st := SiteStats{Site: s, Intervals: ivs}
			var up int64
			for _, iv := range ivs {
				up += iv.Len()
			}
			st.DutyFactor = float64(up) / observed
			results = append(results, st)
		}
		cum := CumulativeDutyFactor(results, observed)
		sum := 0.0
		for i, st := range results {
			sum += st.DutyFactor
			if cum[i] > 1+1e-9 || cum[i] > sum+1e-9 {
				return false
			}
			if i > 0 && cum[i] < cum[i-1]-1e-12 {
				return false
			}
			if cum[i] < results[0].DutyFactor-1e-9 && i >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCumulativeAvgSPMW(t *testing.T) {
	results := []SiteStats{
		{DutyFactor: 0.5, AvgSPMW: 40},
		{DutyFactor: 0.25, AvgSPMW: 20},
	}
	cum := CumulativeAvgSPMW(results)
	if math.Abs(cum[0]-20) > 1e-12 || math.Abs(cum[1]-25) > 1e-12 {
		t.Errorf("cum = %v, want [20 25]", cum)
	}
}

func TestWindows(t *testing.T) {
	ws := Windows([]Interval{{Start: 12, End: 24}})
	if len(ws) != 1 {
		t.Fatal("want one window")
	}
	if ws[0].Start != 12*300 || ws[0].End != 24*300 {
		t.Errorf("window = %+v, want [3600, 7200)", ws[0])
	}
}

func TestIntervalSet(t *testing.T) {
	s := newIntervalSet()
	s.add(10, 20)
	s.add(30, 40)
	s.add(15, 35) // bridges both
	if s.total() != 30 {
		t.Errorf("total = %d, want 30", s.total())
	}
	s.add(0, 5)
	s.add(5, 10) // adjacent merges
	if s.total() != 40 {
		t.Errorf("total = %d, want 40", s.total())
	}
	s.add(12, 13) // contained: no change
	if s.total() != 40 {
		t.Errorf("total = %d after contained add", s.total())
	}
	s.add(7, 7) // empty: no-op
	if s.total() != 40 {
		t.Error("empty add changed set")
	}
}

// Property: intervalSet.total matches a brute-force boolean timeline.
func TestIntervalSetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := newIntervalSet()
		line := make([]bool, 500)
		for i := 0; i < int(n)%40; i++ {
			a := int64(r.Intn(480))
			b := a + int64(r.Intn(60))
			if b > 500 {
				b = 500
			}
			s.add(a, b)
			for k := a; k < b; k++ {
				line[k] = true
			}
		}
		var want int64
		for _, v := range line {
			if v {
				want++
			}
		}
		return s.total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
