package zccloud_test

// Godoc examples for the public facade. Each is a complete, runnable
// fragment of the paper's pipeline with deterministic output.

import (
	"fmt"

	"zccloud"
)

// ExampleSimulate runs the paper's headline comparison at toy scale:
// Mira alone vs Mira plus a same-size periodic ZCCloud.
func ExampleSimulate() {
	trace, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{Seed: 1, Days: 7})
	if err != nil {
		panic(err)
	}

	base, err := zccloud.Simulate(zccloud.RunConfig{Trace: trace.Clone()})
	if err != nil {
		panic(err)
	}
	mz, err := zccloud.Simulate(zccloud.RunConfig{
		Trace: trace.Clone(),
		System: zccloud.SystemConfig{
			ZCFactor: 1,
			ZCAvail:  zccloud.NewPeriodic(0.5, 20*zccloud.Hour),
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("ZCCloud reduces wait: %v\n", mz.AvgWaitHrs < base.AvgWaitHrs)
	fmt.Printf("all jobs completed: %v\n", mz.WorkloadCompleted)
	// Output:
	// ZCCloud reduces wait: true
	// all jobs completed: true
}

// ExampleNewSPAnalysis extracts stranded-power intervals from a small
// synthetic market and reports the best site's duty factor band.
func ExampleNewSPAnalysis() {
	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed: 1, Days: 14, WindSites: 20,
	})
	if err != nil {
		panic(err)
	}
	an := zccloud.NewSPAnalysis(zccloud.SPModel{Kind: zccloud.NetPrice, Threshold: 0}, 20)
	var buf []zccloud.MarketRecord
	for {
		var ok bool
		if buf, ok = gen.Next(buf); !ok {
			break
		}
		for _, r := range buf {
			an.Observe(r)
		}
	}
	best := an.Results()[0]
	fmt.Printf("stranded power exists: %v\n", best.DutyFactor > 0)
	fmt.Printf("duty factor below 100%%: %v\n", best.DutyFactor < 1)
	// Output:
	// stranded power exists: true
	// duty factor below 100%: true
}

// ExampleMeasureDutyFactor shows the availability-window algebra.
func ExampleMeasureDutyFactor() {
	// Up the first 6 hours of every day.
	m := zccloud.NewPeriodic(0.25, 0)
	df := zccloud.MeasureDutyFactor(m, 0, 10*zccloud.Day)
	fmt.Printf("duty factor: %.2f\n", df)

	union := zccloud.UnionAvailability(0, 10*zccloud.Day, m, zccloud.NewPeriodic(0.25, 12*zccloud.Hour))
	fmt.Printf("two offset sites: %.2f\n", zccloud.MeasureDutyFactor(union, 0, 10*zccloud.Day))
	// Output:
	// duty factor: 0.25
	// two offset sites: 0.50
}

// ExampleEconParams compares deployment economics.
func ExampleEconParams() {
	newHW := zccloud.DefaultEconParams()
	recycled := zccloud.RecycledEconParams()

	trad, _ := newHW.CostPerNodeHour(zccloud.TraditionalDeployment, 1)
	cont, _ := recycled.CostPerNodeHour(zccloud.ContainerDeployment, 0.6)
	fmt.Printf("recycled container at 60%% duty beats a new machine room: %v\n", cont < trad)

	be, _ := recycled.BreakevenAgainst(newHW)
	fmt.Printf("breakeven duty factor below 30%%: %v\n", be < 0.3)
	// Output:
	// recycled container at 60% duty beats a new machine room: true
	// breakeven duty factor below 30%: true
}

// ExampleTop500CumulativePowerMW anchors Figure 12's comparison line.
func ExampleTop500CumulativePowerMW() {
	fmt.Printf("Top system: %.2f MW\n", zccloud.Top500PowerMW(1))
	fmt.Printf("Top 10 combined: %.1f MW\n", zccloud.Top500CumulativePowerMW(10))
	// Output:
	// Top system: 17.81 MW
	// Top 10 combined: 64.5 MW
}
