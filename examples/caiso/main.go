// CAISO scenario (paper, Section VIII: "additional ISO's with different
// renewable mixes"): the same stranded-power pipeline on a solar-dominated
// California-like grid. Solar stranding follows the duck curve — negative
// midday prices, every day, bounded by daylight — so its SP intervals are
// shorter but far more regular than MISO wind's multi-day episodes.
//
//	go run ./examples/caiso
package main

import (
	"fmt"
	"log"

	"zccloud"
)

const (
	days  = 90
	sites = 60
)

func main() {
	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed:      7,
		Days:      days,
		WindSites: sites,
		Scenario:  zccloud.CAISOScenario,
		StartDay:  60, // start in March: spring duck season
	})
	if err != nil {
		log.Fatal(err)
	}

	// Solar prices can stay negative after sundown, so SP requires actual
	// power: the 1 MW floor breaks runs at night.
	model := zccloud.SPModel{Kind: zccloud.NetPrice, Threshold: 0}
	an := zccloud.NewSPAnalysisMin(model, sites, 1)
	var buf []zccloud.MarketRecord
	for {
		var ok bool
		buf, ok = gen.Next(buf)
		if !ok {
			break
		}
		for _, r := range buf {
			an.Observe(r)
		}
	}
	res := an.Results()
	// Results rank all renewables; pick the best *solar* site — wind in
	// the mountain passes behaves like MISO's, solar is the new physics.
	var best zccloud.SPSiteStats
	for _, st := range res {
		if gen.SiteKind(st.Site) == zccloud.SolarKind && st.DutyFactor > 0 {
			best = st
			break
		}
	}
	fmt.Printf("best solar %s site in the CAISO scenario: #%d, duty %.1f%%, %.1f MW available during SP\n",
		model, best.Site, 100*best.DutyFactor, best.AvgAvailableMW)

	// The duck-curve signature: how much SP time falls at each hour of day.
	var byHour [24]float64
	for _, iv := range best.Intervals {
		for step := iv.Start; step < iv.End; step++ {
			hod := int(step % 288 * 5 / 60)
			byHour[hod] += 5.0 / 60
		}
	}
	maxH := 0.0
	for _, h := range byHour {
		if h > maxH {
			maxH = h
		}
	}
	fmt.Println("\nstranded hours by time of day (duck curve):")
	for h := 0; h < 24; h++ {
		bar := ""
		if maxH > 0 {
			for i := 0; i < int(byHour[h]/maxH*40); i++ {
				bar += "#"
			}
		}
		fmt.Printf("%02d:00 %6.1f h %s\n", h, byHour[h], bar)
	}

	// And the scheduling consequence: diurnal solar SP behaves like the
	// paper's periodic model.
	trace, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{Seed: 7, Days: 28, ExactRequests: true})
	if err != nil {
		log.Fatal(err)
	}
	mira, err := zccloud.Simulate(zccloud.RunConfig{Trace: trace.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := zccloud.Simulate(zccloud.RunConfig{
		Trace: trace.Clone(),
		System: zccloud.SystemConfig{
			ZCFactor: 1,
			ZCAvail:  zccloud.NewIntervalTrace(zccloud.SPWindows(best.Intervals)),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMira only %.2f h avg wait → with solar-SP ZCCloud %.2f h (−%.0f%%)\n",
		mira.AvgWaitHrs, sp.AvgWaitHrs, 100*(1-sp.AvgWaitHrs/mira.AvgWaitHrs))
}
