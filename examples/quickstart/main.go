// Quickstart: generate a Mira-like workload, simulate the base system and
// a Mira-ZCCloud system, and compare job wait times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"zccloud"
)

func main() {
	// A month of ALCF-like workload, pushed a little past Table I's
	// utilization so the base system queues the way a busy center does.
	trace, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{
		Seed:          1,
		Days:          28,
		Scale:         1.15,
		ExactRequests: true, // schedule on true runtimes, as Qsim replays
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := zccloud.SummarizeWorkload(trace, 49152)
	fmt.Printf("workload: %d jobs, runtimes avg %.1f h, nodes avg %.0f, utilization %.0f%%\n",
		stats.Jobs, stats.RuntimeMeanHrs, stats.NodesMean, 100*stats.Utilization)

	// Baseline: Mira alone.
	base, err := zccloud.Simulate(zccloud.RunConfig{Trace: trace.Clone()})
	if err != nil {
		log.Fatal(err)
	}

	// Mira + a same-size ZCCloud partition that has power 50% of each day
	// (20:00 to 08:00), the paper's periodic model.
	mz, err := zccloud.Simulate(zccloud.RunConfig{
		Trace: trace.Clone(),
		System: zccloud.SystemConfig{
			ZCFactor: 1,
			ZCAvail:  zccloud.NewPeriodic(0.5, 20*zccloud.Hour),
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "Mira", "Mira-ZCCloud")
	fmt.Printf("%-22s %10.2f h %10.2f h\n", "average wait", base.AvgWaitHrs, mz.AvgWaitHrs)
	fmt.Printf("%-22s %10.2f h %10.2f h\n", "capability jobs (>8k)", base.AvgWaitCapabilityHrs, mz.AvgWaitCapabilityHrs)
	fmt.Printf("%-22s %9.1f /d %9.1f /d\n", "throughput", base.ThroughputJobsPerDay, mz.ThroughputJobsPerDay)
	fmt.Printf("\nZCCloud carried %.0f%% of the delivered node-hours at zero grid cost.\n",
		100*mz.ZCShareOfWork)
	if base.AvgWaitHrs > 0 {
		fmt.Printf("wait time reduction: %.0f%%\n", 100*(1-mz.AvgWaitHrs/base.AvgWaitHrs))
	}
}
