// Multi-site ZCCloud (paper, Section VIII future work): combine the
// stranded-power intervals of several wind sites into one union
// availability and measure the scheduling benefit of the higher duty
// factor.
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"

	"zccloud"
)

const (
	marketDays   = 120
	workloadDays = 28
	sites        = 120
)

func main() {
	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed: 11, Days: marketDays, WindSites: sites,
		StartDay: 90, // spring through summer
	})
	if err != nil {
		log.Fatal(err)
	}
	model := zccloud.SPModel{Kind: zccloud.NetPrice, Threshold: 5}
	an := zccloud.NewSPAnalysis(model, sites)
	var buf []zccloud.MarketRecord
	var observed int64
	for {
		var ok bool
		buf, ok = gen.Next(buf)
		if !ok {
			break
		}
		for _, r := range buf {
			an.Observe(r)
		}
		observed++
	}
	res := an.Results()
	cum := zccloud.CumulativeDutyFactor(res, observed)

	trace, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{Seed: 11, Days: workloadDays, ExactRequests: true})
	if err != nil {
		log.Fatal(err)
	}
	mira, err := zccloud.Simulate(zccloud.RunConfig{Trace: trace.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mira only: %.2f h average wait\n\n", mira.AvgWaitHrs)
	fmt.Printf("%-8s %12s %12s %14s\n", "sites", "union duty", "wait (h)", "vs Mira")

	for _, n := range []int{1, 3, 7} {
		if n > len(res) {
			break
		}
		// Union of the top-n sites' windows.
		var all []zccloud.Window
		for i := 0; i < n; i++ {
			all = append(all, zccloud.SPWindows(res[i].Intervals)...)
		}
		avail := zccloud.NewIntervalTrace(all)
		m, err := zccloud.Simulate(zccloud.RunConfig{
			Trace:  trace.Clone(),
			System: zccloud.SystemConfig{ZCFactor: 1, ZCAvail: avail},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %11.1f%% %12.2f %13.0f%%\n",
			n, 100*cum[n-1], m.AvgWaitHrs, 100*(1-m.AvgWaitHrs/mira.AvgWaitHrs))
	}
	fmt.Println("\nCombining sites raises the duty factor (Figure 11) and with it the")
	fmt.Println("scheduling benefit — the paper's proposed next step for ZCCloud.")
}
