// SP-driven ZCCloud (paper, Section VI) end to end at reduced scale:
// synthesize the market, find the best stranded-power site, drive the
// ZCCloud partition's availability from that site's SP intervals, and
// compare scheduling performance against the base system and a periodic
// model at the same duty factor.
//
//	go run ./examples/spdriven
package main

import (
	"fmt"
	"log"

	"zccloud"
)

const (
	marketDays   = 120
	workloadDays = 28
	sites        = 120
)

func main() {
	// 1. Market synthesis + stranded power analysis (NetPrice0).
	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed: 5, Days: marketDays, WindSites: sites,
		StartDay: 90, // spring through summer: both windy and calm weeks
	})
	if err != nil {
		log.Fatal(err)
	}
	model := zccloud.SPModel{Kind: zccloud.NetPrice, Threshold: 0}
	an := zccloud.NewSPAnalysis(model, sites)
	var buf []zccloud.MarketRecord
	for {
		var ok bool
		buf, ok = gen.Next(buf)
		if !ok {
			break
		}
		for _, r := range buf {
			an.Observe(r)
		}
	}
	best := an.Results()[0]
	fmt.Printf("best %s site: #%d, duty factor %.1f%%, %.1f MW available during SP\n",
		model, best.Site, 100*best.DutyFactor, best.AvgAvailableMW)

	// 2. Convert the site's SP intervals into ZCCloud availability.
	windows := zccloud.SPWindows(best.Intervals)
	avail := zccloud.NewIntervalTrace(windows)

	// 3. Simulate the workload on three systems.
	trace, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{Seed: 5, Days: workloadDays, ExactRequests: true})
	if err != nil {
		log.Fatal(err)
	}

	mira, err := zccloud.Simulate(zccloud.RunConfig{Trace: trace.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := zccloud.Simulate(zccloud.RunConfig{
		Trace:  trace.Clone(),
		System: zccloud.SystemConfig{ZCFactor: 1, ZCAvail: avail},
	})
	if err != nil {
		log.Fatal(err)
	}
	var periodic *zccloud.Metrics
	if best.DutyFactor > 0 && best.DutyFactor < 1 {
		periodic, err = zccloud.Simulate(zccloud.RunConfig{
			Trace: trace.Clone(),
			System: zccloud.SystemConfig{
				ZCFactor: 1,
				ZCAvail:  zccloud.NewPeriodic(best.DutyFactor, 20*zccloud.Hour),
			},
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("\n%-34s %10s\n", "system", "avg wait")
	fmt.Printf("%-34s %8.2f h\n", "Mira only", mira.AvgWaitHrs)
	if periodic != nil {
		fmt.Printf("%-34s %8.2f h\n",
			fmt.Sprintf("M-Z periodic @%.0f%% duty", 100*best.DutyFactor), periodic.AvgWaitHrs)
	}
	fmt.Printf("%-34s %8.2f h\n", "M-Z stranded-power driven", sp.AvgWaitHrs)
	if mira.AvgWaitHrs > 0 {
		fmt.Printf("\nSP-driven ZCCloud cut average wait by %.0f%% using only power the grid "+
			"would have discarded.\n", 100*(1-sp.AvgWaitHrs/mira.AvgWaitHrs))
	}
}
