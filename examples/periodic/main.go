// Periodic-resource study (paper, Section IV) at reduced scale: how do
// duty factor and ZCCloud size trade off? Reproduces the structure of
// Figures 5-8 on a one-month workload.
//
//	go run ./examples/periodic
package main

import (
	"fmt"
	"log"

	"zccloud"
)

const days = 28

func main() {
	base, err := zccloud.GenerateWorkload(zccloud.WorkloadConfig{Seed: 9, Days: days, ExactRequests: true})
	if err != nil {
		log.Fatal(err)
	}

	mira, err := zccloud.Simulate(zccloud.RunConfig{Trace: base.Clone()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mira baseline: %.2f h average wait, %.0f jobs/day\n\n",
		mira.AvgWaitHrs, mira.ThroughputJobsPerDay)

	// Figure 8's grid: duty factor × ZCCloud size, workload scaled to keep
	// utilization constant (scale = 1 + duty × size).
	fmt.Printf("%-8s %-6s %-9s %12s %12s\n", "ZC size", "duty", "workload", "wait (h)", "jobs/day")
	for _, size := range []float64{1, 2, 4} {
		for _, duty := range []float64{0.25, 0.5, 1.0} {
			scale := 1 + duty*size
			tr, err := zccloud.ScaleWorkload(base, scale, 100+int64(scale*10))
			if err != nil {
				log.Fatal(err)
			}
			var avail zccloud.AvailabilityModel = zccloud.AlwaysOn{}
			if duty < 1 {
				avail = zccloud.NewPeriodic(duty, 20*zccloud.Hour)
			}
			m, err := zccloud.Simulate(zccloud.RunConfig{
				Trace:  tr,
				System: zccloud.SystemConfig{ZCFactor: size, ZCAvail: avail},
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-6s %-9s %12.2f %12.0f\n",
				fmt.Sprintf("%gx", size),
				fmt.Sprintf("%.0f%%", duty*100),
				fmt.Sprintf("%.2fx", scale),
				m.AvgWaitHrs, m.ThroughputJobsPerDay)
		}
	}
	fmt.Println("\nThe paper's Figure 8 result: throughput scales with duty × size —")
	fmt.Println("doubling the duty factor buys about as much as doubling the hardware.")
}
