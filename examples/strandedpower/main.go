// Stranded-power characterization (paper, Section V) at reduced scale:
// synthesize a MISO-like market, extract stranded-power intervals under
// the paper's four SP models, and print duty factors, interval durations,
// and the Top500 comparison.
//
//	go run ./examples/strandedpower
package main

import (
	"fmt"
	"log"

	"zccloud"
)

const (
	days  = 90
	sites = 60
)

func main() {
	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed: 3, Days: days, WindSites: sites,
	})
	if err != nil {
		log.Fatal(err)
	}

	// One streaming pass feeds all four model analyses.
	analyses := make([]*zccloud.SPAnalysis, len(zccloud.PaperSPModels))
	for i, m := range zccloud.PaperSPModels {
		analyses[i] = zccloud.NewSPAnalysis(m, sites)
	}
	var buf []zccloud.MarketRecord
	intervals := int64(0)
	for {
		var ok bool
		buf, ok = gen.Next(buf)
		if !ok {
			break
		}
		for _, r := range buf {
			for _, a := range analyses {
				a.Observe(r)
			}
		}
		intervals++
	}
	sum := gen.Summary()
	fmt.Printf("dataset: %d days, %d wind sites, %.0f wind GWh (%.1f%% of system), %.0f GWh curtailed\n\n",
		days, sites, sum.WindGWh, 100*sum.WindGWh/sum.TotalGWh, sum.WindCurtailedGWh)

	fmt.Printf("%-11s %10s %12s %22s\n", "model", "best duty", "avg SP MW", "SP time >24h intervals")
	for i, m := range zccloud.PaperSPModels {
		res := analyses[i].Results()
		best := res[0]
		var over24 float64
		var total float64
		for _, iv := range best.Intervals {
			h := iv.Hours()
			total += h
			if h > 24 {
				over24 += h
			}
		}
		frac := 0.0
		if total > 0 {
			frac = over24 / total
		}
		fmt.Printf("%-11s %9.1f%% %12.1f %21.0f%%\n",
			m.String(), 100*best.DutyFactor, best.AvgSPMW, 100*frac)
	}

	// Multi-site gains (Figure 11) and Top500 coverage (Figure 12) under
	// NetPrice5, the model with the highest duty factors.
	var np5 *zccloud.SPAnalysis
	for i, m := range zccloud.PaperSPModels {
		if m.Kind == zccloud.NetPrice && m.Threshold == 5 {
			np5 = analyses[i]
		}
	}
	res := np5.Results()
	cum := zccloud.CumulativeDutyFactor(res, intervals)
	mw := zccloud.CumulativeAvgSPMW(res)
	fmt.Println("\nNetPrice5 multi-site union:")
	for _, n := range []int{1, 2, 3, 7} {
		if n <= len(cum) {
			fmt.Printf("  top %d sites: duty %.0f%%, %.0f MW average stranded power\n",
				n, 100*cum[n-1], mw[n-1])
		}
	}
	fmt.Println("\nTop500 systems this stranded power could carry:")
	for _, rank := range []int{1, 10, 50} {
		need := zccloud.Top500CumulativePowerMW(rank)
		n := 0
		for i, v := range mw {
			if v >= need {
				n = i + 1
				break
			}
		}
		if n > 0 {
			fmt.Printf("  top %3d systems (%6.1f MW): %d sites\n", rank, need, n)
		} else {
			fmt.Printf("  top %3d systems (%6.1f MW): beyond these %d sites\n", rank, need, len(mw))
		}
	}
}
