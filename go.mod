module zccloud

go 1.22
