package zccloud

// End-to-end integration tests of the public facade: the complete paper
// pipeline — market synthesis → stranded-power extraction → availability
// → scheduling — at a scale that runs in seconds.

import (
	"bytes"
	"strings"
	"testing"
)

func TestEndToEndPipeline(t *testing.T) {
	const (
		marketDays = 30
		sites      = 20
		wlDays     = 10
	)
	// 1. Market.
	gen, err := NewMarketDataset(MarketConfig{Seed: 8, Days: marketDays, WindSites: sites})
	if err != nil {
		t.Fatal(err)
	}
	an := NewSPAnalysis(SPModel{Kind: NetPrice, Threshold: 5}, sites)
	var buf []MarketRecord
	for {
		var ok bool
		buf, ok = gen.Next(buf)
		if !ok {
			break
		}
		for _, r := range buf {
			an.Observe(r)
		}
	}
	best := an.Results()[0]
	if best.DutyFactor <= 0 {
		t.Skip("no stranded power at this tiny scale; seed-dependent")
	}

	// 2. Availability from SP intervals.
	avail := NewIntervalTrace(SPWindows(best.Intervals))
	df := MeasureDutyFactor(avail, 0, Time(marketDays)*Day)
	if df <= 0 || df > 1 {
		t.Fatalf("duty factor = %v", df)
	}

	// 3. Workload.
	trace, err := GenerateWorkload(WorkloadConfig{Seed: 8, Days: wlDays})
	if err != nil {
		t.Fatal(err)
	}

	// 4. Scheduling on both systems.
	base, err := Simulate(RunConfig{Trace: trace.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	mz, err := Simulate(RunConfig{
		Trace:  trace.Clone(),
		System: SystemConfig{ZCFactor: 1, ZCAvail: avail},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("duty %.1f%%: wait %.2f h -> %.2f h", 100*df, base.AvgWaitHrs, mz.AvgWaitHrs)
	// The headline qualitative result: stranded power helps.
	if mz.AvgWaitHrs > base.AvgWaitHrs {
		t.Errorf("SP-driven ZCCloud worsened wait: %.2f > %.2f", mz.AvgWaitHrs, base.AvgWaitHrs)
	}
	if mz.Completed < base.Completed {
		t.Errorf("fewer completions with more resources: %d < %d", mz.Completed, base.Completed)
	}
}

func TestFacadeMarketCSV(t *testing.T) {
	gen, err := NewMarketDataset(MarketConfig{Seed: 2, Days: 0.2, WindSites: 5})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	rows, err := WriteMarketCSV(gen, &out)
	if err != nil {
		t.Fatal(err)
	}
	var read int64
	err = ReadMarketCSV(&out, func(r MarketRecord) error { read++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if read != rows {
		t.Fatalf("read %d rows, wrote %d", read, rows)
	}
}

func TestFacadeTraceCSV(t *testing.T) {
	tr, err := GenerateWorkload(WorkloadConfig{Seed: 3, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := tr.WriteCSV(&out); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTraceCSV(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost jobs: %d vs %d", len(back.Jobs), len(tr.Jobs))
	}
}

func TestFacadeScaleAndSummarize(t *testing.T) {
	tr, err := GenerateWorkload(WorkloadConfig{Seed: 4, Days: 3})
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := ScaleWorkload(tr, 1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := SummarizeWorkload(tr, 49152)
	b := SummarizeWorkload(scaled, 49152)
	if b.NodeHours <= a.NodeHours {
		t.Error("scaling did not add node-hours")
	}
}

func TestFacadeUnionAvailability(t *testing.T) {
	a := NewIntervalTrace([]Window{{Start: 0, End: 10}})
	b := NewIntervalTrace([]Window{{Start: 5, End: 20}})
	u := UnionAvailability(0, 100, a, b)
	if got := MeasureDutyFactor(u, 0, 100); got != 0.2 {
		t.Errorf("union duty factor = %v, want 0.2", got)
	}
}

func TestFacadeTop500(t *testing.T) {
	if Top500PowerMW(1) != 17.81 {
		t.Error("Tianhe-2 power wrong through facade")
	}
	if Top500CumulativePowerMW(10) <= Top500PowerMW(1) {
		t.Error("cumulative power wrong")
	}
}

func TestFacadeSPModelsList(t *testing.T) {
	if len(PaperSPModels) != 4 {
		t.Fatalf("paper models = %d", len(PaperSPModels))
	}
	names := map[string]bool{}
	for _, m := range PaperSPModels {
		names[m.String()] = true
	}
	for _, want := range []string{"LMP0", "LMP5", "NetPrice0", "NetPrice5"} {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
}
