package zccloud

// One benchmark per table and figure of the paper's evaluation, each
// regenerating its artifact at the Quick preset (28-day workload, 60-day
// market, 60 sites), plus micro-benchmarks of the hot paths. Run with
//
//	go test -bench=. -benchmem
//
// Paper-scale runs are the zccexp command's job; these benches exist so
// the full reproduction pipeline is exercised and timed on every change.

import (
	"fmt"
	"testing"
)

// benchLab memoizes one Lab per seed across benchmark iterations of a
// single `go test` process — experiments share workload and market
// artifacts exactly as cmd/zccexp does.
var benchLabs = map[int64]*Lab{}

func labFor(seed int64) *Lab {
	l, ok := benchLabs[seed]
	if !ok {
		l = NewLab(QuickOptions(seed))
		benchLabs[seed] = l
	}
	return l
}

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	lab := labFor(42)
	// Warm the shared artifacts outside the timed region.
	if _, err := RunExperiment(id, lab); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunExperiment(id, lab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Workload(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable2Parameters(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig5WaitBySize(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig6OnTimeLate(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7WorkloadScale(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8Throughput(b *testing.B)        { benchExperiment(b, "fig8") }
func BenchmarkTable3Dataset(b *testing.B)         { benchExperiment(b, "table3") }
func BenchmarkTable4Schema(b *testing.B)          { benchExperiment(b, "table4") }
func BenchmarkTable5SPModels(b *testing.B)        { benchExperiment(b, "table5") }
func BenchmarkFig9DutyHistogram(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10Intervals(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11Cumulative(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12StrandedVsTop500(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkTable6BestSites(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkTable7Parameters(b *testing.B)      { benchExperiment(b, "table7") }
func BenchmarkFig13PeriodicVsSP(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkFig14SPWorkloads(b *testing.B)      { benchExperiment(b, "fig14") }
func BenchmarkFig15SystemSize(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkMultisite(b *testing.B)             { benchExperiment(b, "multisite") }
func BenchmarkKillRequeue(b *testing.B)           { benchExperiment(b, "killrequeue") }
func BenchmarkPrediction(b *testing.B)            { benchExperiment(b, "prediction") }
func BenchmarkBackfillAblation(b *testing.B)      { benchExperiment(b, "backfill") }
func BenchmarkBurstinessAblation(b *testing.B)    { benchExperiment(b, "burstiness") }
func BenchmarkEconomics(b *testing.B)             { benchExperiment(b, "economics") }
func BenchmarkCheckpoint(b *testing.B)            { benchExperiment(b, "checkpoint") }
func BenchmarkCAISO(b *testing.B)                 { benchExperiment(b, "caiso") }

// --- micro-benchmarks of the pipeline stages ---

// BenchmarkWorkloadGeneration times one month of synthetic trace.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorkload(WorkloadConfig{Seed: int64(i), Days: 28}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedulerMonth times a full scheduling simulation of one month
// on Mira + 1xMira ZCCloud at 50% duty.
func BenchmarkSchedulerMonth(b *testing.B) {
	tr, err := GenerateWorkload(WorkloadConfig{Seed: 1, Days: 28})
	if err != nil {
		b.Fatal(err)
	}
	zc := NewPeriodic(0.5, 20*Hour)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(RunConfig{
			Trace:  tr.Clone(),
			System: SystemConfig{ZCFactor: 1, ZCAvail: zc},
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarketDay times one day of 5-minute market clearing with 200
// wind sites (288 dispatches).
func BenchmarkMarketDay(b *testing.B) {
	gen, err := NewMarketDataset(MarketConfig{Seed: 1, Days: float64(b.N), WindSites: 200})
	if err != nil {
		b.Fatal(err)
	}
	var buf []MarketRecord
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 288; k++ {
			var ok bool
			buf, ok = gen.Next(buf)
			if !ok {
				b.Fatal("dataset exhausted")
			}
		}
	}
}

// BenchmarkSPAnalysisDay times stranded-power extraction over one day of
// records for 200 sites under all four paper models.
func BenchmarkSPAnalysisDay(b *testing.B) {
	gen, err := NewMarketDataset(MarketConfig{Seed: 1, Days: 30, WindSites: 200})
	if err != nil {
		b.Fatal(err)
	}
	var day [][]MarketRecord
	var buf []MarketRecord
	for k := 0; k < 288; k++ {
		var ok bool
		buf, ok = gen.Next(buf[:0:0])
		if !ok {
			b.Fatal("dataset exhausted")
		}
		day = append(day, buf)
		buf = nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyses := make([]*SPAnalysis, len(PaperSPModels))
		for k, m := range PaperSPModels {
			analyses[k] = NewSPAnalysis(m, 200)
		}
		for _, batch := range day {
			for _, r := range batch {
				for _, a := range analyses {
					a.Observe(r)
				}
			}
		}
	}
}

// BenchmarkScaleWorkload times the paper's NxWorkload duplication.
func BenchmarkScaleWorkload(b *testing.B) {
	tr, err := GenerateWorkload(WorkloadConfig{Seed: 1, Days: 28})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ScaleWorkload(tr, 1.5, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndEventsPerSec is the perf-baseline anchor: a complete
// month-long Mira + 1xZCCloud simulation, reported as dispatched engine
// events per wall-clock second (the simulator's natural throughput
// unit). cmd/zccbench records it in BENCH_PR4.json so regressions show
// up as a ratio against a committed baseline.
func BenchmarkEndToEndEventsPerSec(b *testing.B) {
	tr, err := GenerateWorkload(WorkloadConfig{Seed: 1, Days: 28})
	if err != nil {
		b.Fatal(err)
	}
	zc := NewPeriodic(0.5, 20*Hour)
	var events int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := NewMetricsRegistry()
		if _, err := Simulate(RunConfig{
			Trace:  tr.Clone(),
			System: SystemConfig{ZCFactor: 1, ZCAvail: zc},
			Obs:    ObsOptions{Metrics: reg},
		}); err != nil {
			b.Fatal(err)
		}
		events += int64(reg.Snapshot().Counter("sim.events_dispatched"))
	}
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// Example-style smoke test making sure the benches' shared lab matches
// the command-line path.
func TestBenchLabSmoke(t *testing.T) {
	tb, err := RunExperiment("table1", labFor(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) == 0 {
		t.Fatal("table1 empty")
	}
	if _, err := RunExperiment("bogus", labFor(42)); err == nil {
		t.Fatal("unknown experiment should error")
	}
	fmt.Println(tb.Text())
}
