#!/bin/sh
# Repo health check: formatting, vet, build, tests (with race detector),
# and the zero-allocation guarantee for disabled instrumentation.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

# Deeper linters when present (CI installs pinned versions; local runs
# skip rather than fetch — the build must stay dependency-free offline).
if command -v staticcheck >/dev/null 2>&1; then
	echo "== staticcheck"
	staticcheck ./...
else
	echo "== staticcheck (not installed; skipped)"
fi
if command -v govulncheck >/dev/null 2>&1; then
	echo "== govulncheck"
	govulncheck ./...
else
	echo "== govulncheck (not installed; skipped)"
fi

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz seed corpora"
go test ./internal/swf ./internal/miso ./internal/tracebin -run '^Fuzz' -count=1

echo "== fuzz smoke (5s each)"
go test ./internal/swf -fuzz FuzzParse -fuzztime 5s
go test ./internal/miso -fuzz FuzzReadCSV -fuzztime 5s
go test ./internal/tracebin -fuzz FuzzDecodeBlock -fuzztime 5s
go test ./internal/tracebin -fuzz FuzzReadTrace -fuzztime 5s

echo "== same-seed faulted-run determinism"
tmpdir=$(mktemp -d)
zccdpid=""
chaospids=""
trap 'rm -rf "$tmpdir"; for p in $zccdpid $chaospids; do kill -9 "$p" 2>/dev/null || true; done' EXIT
go build -o "$tmpdir/zccsim" ./cmd/zccsim
for i in 1 2; do
	"$tmpdir/zccsim" -days 7 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
		-kill-requeue -mtbf 12 -brownout 0.25 -forecast-err 0.5 -retry-limit 4 \
		-seed 7 -trace "$tmpdir/t$i.jsonl" >"$tmpdir/out$i.txt"
done
if ! cmp -s "$tmpdir/t1.jsonl" "$tmpdir/t2.jsonl"; then
	echo "faulted event traces differ between same-seed runs" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/out1.txt" "$tmpdir/out2.txt"; then
	echo "faulted CLI output differs between same-seed runs" >&2
	exit 1
fi

echo "== binary trace round-trip fidelity"
# The same seeded run traced to .zct then exported must be byte-identical
# to the run traced straight to JSONL, and block-parallel zcctrace scans
# must produce exactly the sequential output on either format.
go build -o "$tmpdir/zcctrace" ./cmd/zcctrace
"$tmpdir/zccsim" -days 7 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
	-kill-requeue -mtbf 12 -brownout 0.25 -forecast-err 0.5 -retry-limit 4 \
	-seed 7 -trace "$tmpdir/t3.zct" >/dev/null
"$tmpdir/zcctrace" export "$tmpdir/t3.zct" >"$tmpdir/t3.exported.jsonl"
if ! cmp -s "$tmpdir/t1.jsonl" "$tmpdir/t3.exported.jsonl"; then
	echo "zcctrace export of .zct differs from a direct JSONL trace" >&2
	exit 1
fi
"$tmpdir/zcctrace" summary -j 1 "$tmpdir/t3.zct" >"$tmpdir/sum.j1"
"$tmpdir/zcctrace" summary -j 4 "$tmpdir/t3.zct" >"$tmpdir/sum.j4"
"$tmpdir/zcctrace" summary "$tmpdir/t1.jsonl" >"$tmpdir/sum.jsonl"
if ! cmp -s "$tmpdir/sum.j1" "$tmpdir/sum.j4"; then
	echo "zcctrace summary -j 4 diverges from -j 1" >&2
	exit 1
fi
# Cross-format: identical below the header line, which names the input.
tail -n +2 "$tmpdir/sum.j1" >"$tmpdir/sum.j1.body"
tail -n +2 "$tmpdir/sum.jsonl" >"$tmpdir/sum.jsonl.body"
if ! cmp -s "$tmpdir/sum.j1.body" "$tmpdir/sum.jsonl.body"; then
	echo "zcctrace summary diverges between .zct and JSONL inputs" >&2
	exit 1
fi
"$tmpdir/zcctrace" series -step 6h -j 1 "$tmpdir/t3.zct" >"$tmpdir/ser.j1"
"$tmpdir/zcctrace" series -step 6h -j 4 "$tmpdir/t3.zct" >"$tmpdir/ser.j4"
if ! cmp -s "$tmpdir/ser.j1" "$tmpdir/ser.j4"; then
	echo "zcctrace series -j 4 diverges from -j 1" >&2
	exit 1
fi

echo "== snapshot pause-and-restore determinism"
"$tmpdir/zccsim" -days 7 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
	-kill-requeue -mtbf 12 -brownout 0.25 -forecast-err 0.5 -retry-limit 4 \
	-seed 7 -check -snapshot "$tmpdir/s.json" -snapshot-at 3 >/dev/null
"$tmpdir/zccsim" -days 7 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
	-kill-requeue -mtbf 12 -brownout 0.25 -forecast-err 0.5 -retry-limit 4 \
	-seed 7 -check -restore "$tmpdir/s.json" >"$tmpdir/restored.txt"
# drop the first line (workload summary vs restore banner); metrics must match
tail -n +2 "$tmpdir/out1.txt" >"$tmpdir/full.body"
tail -n +2 "$tmpdir/restored.txt" >"$tmpdir/restored.body"
if ! cmp -s "$tmpdir/full.body" "$tmpdir/restored.body"; then
	echo "restored run metrics differ from the uninterrupted run" >&2
	exit 1
fi

echo "== sweep interrupt-and-resume smoke test"
go build -o "$tmpdir/zccexp" ./cmd/zccexp
expflags="-quick -days 6 -market-days 10 -sites 12 -seed 5 -check -ids table1,fig5,table3 -markdown"
"$tmpdir/zccexp" $expflags -o "$tmpdir/uninterrupted.md" >/dev/null 2>&1
# interrupt the journaled sweep after 1 cell, then resume it
if "$tmpdir/zccexp" $expflags -o "$tmpdir/partial.md" \
	-run-dir "$tmpdir/sweep" -interrupt-after 1 >/dev/null 2>&1; then
	echo "interrupted sweep should exit nonzero" >&2
	exit 1
fi
"$tmpdir/zccexp" $expflags -o "$tmpdir/resumed.md" -resume "$tmpdir/sweep" >/dev/null 2>&1
# experiment tables must match; the telemetry summary counts per-process work
sed '/Telemetry summary/,$d' "$tmpdir/uninterrupted.md" >"$tmpdir/u.tables"
sed '/Telemetry summary/,$d' "$tmpdir/resumed.md" >"$tmpdir/r.tables"
if ! cmp -s "$tmpdir/u.tables" "$tmpdir/r.tables"; then
	echo "resumed sweep tables differ from the uninterrupted sweep" >&2
	exit 1
fi
# resuming under different flags must be refused
if "$tmpdir/zccexp" $expflags -seed 6 -resume "$tmpdir/sweep" >/dev/null 2>&1; then
	echo "resume with a different flag set was not refused" >&2
	exit 1
fi

echo "== live introspection endpoint smoke test"
# Start a run with -http on an ephemeral port (lingering after the run
# so the scrape can't race a fast finish), scrape /metrics and /status,
# and check both are well-formed.
"$tmpdir/zccsim" -days 28 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
	-seed 7 -http 127.0.0.1:0 -http-linger 60s \
	>"$tmpdir/http.out" 2>"$tmpdir/http.err" &
simpid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's#.*introspection server on http://##p' "$tmpdir/http.err" | head -n 1)
	[ -n "$addr" ] && break
	if ! kill -0 "$simpid" 2>/dev/null; then break; fi
	sleep 0.05
done
if [ -z "$addr" ]; then
	echo "zccsim -http never reported a bound address" >&2
	cat "$tmpdir/http.err" >&2
	exit 1
fi
curl -fsS "http://$addr/metrics" >"$tmpdir/metrics.prom"
curl -fsS "http://$addr/status" >"$tmpdir/status.json"
# Let the simulation finish (a TERM mid-run would pause it), then end the
# linger early.
for _ in $(seq 1 600); do
	grep -q "run complete" "$tmpdir/http.err" && break
	kill -0 "$simpid" 2>/dev/null || break
	sleep 0.05
done
kill -TERM "$simpid" 2>/dev/null || true
wait "$simpid"
if ! grep -q '^# TYPE zccloud_' "$tmpdir/metrics.prom"; then
	echo "/metrics is not Prometheus text exposition:" >&2
	head "$tmpdir/metrics.prom" >&2
	exit 1
fi
if ! grep -q '"clock_days"' "$tmpdir/status.json"; then
	echo "/status has no live simulation sample:" >&2
	cat "$tmpdir/status.json" >&2
	exit 1
fi
# The -http run's stdout must match the default run's byte-for-byte:
# introspection must never perturb the simulation.
"$tmpdir/zccsim" -days 28 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
	-seed 7 >"$tmpdir/nohttp.out"
if ! cmp -s "$tmpdir/http.out" "$tmpdir/nohttp.out"; then
	echo "-http changed simulation output" >&2
	diff "$tmpdir/nohttp.out" "$tmpdir/http.out" >&2 || true
	exit 1
fi

echo "== zccd serving daemon chaos soak"
scripts/soak.sh

echo "== zccd lifecycle telemetry smoke test"
# Start a debug-logging daemon, push one run through its whole
# lifecycle, and assert the run is reconstructable from structured logs
# by run_id alone, the sample ring serves history, and zcctop renders.
go build -o "$tmpdir/zccd" ./cmd/zccd
go build -o "$tmpdir/zcctop" ./cmd/zcctop
"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 1 -log-level debug \
	-sample-interval 100ms -data "$tmpdir/zccd-data" 2>"$tmpdir/zccd.log" &
zccdpid=$!
daddr=""
for _ in $(seq 1 100); do
	daddr=$(sed -n 's/.*msg=serving .*addr=\([^ ]*\).*/\1/p' "$tmpdir/zccd.log" | head -n 1)
	[ -n "$daddr" ] && break
	if ! kill -0 "$zccdpid" 2>/dev/null; then
		echo "zccd died on startup:" >&2
		cat "$tmpdir/zccd.log" >&2
		exit 1
	fi
	sleep 0.05
done
[ -n "$daddr" ] || { echo "zccd never logged its address" >&2; exit 1; }
runid=$(curl -fsS -XPOST "http://$daddr/v1/runs" \
	-d '{"days": 2, "mira_nodes": 2048}' | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$runid" ] || { echo "submit returned no run id" >&2; exit 1; }
state=""
for _ in $(seq 1 200); do
	state=$(curl -fsS "http://$daddr/v1/runs/$runid" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
	[ "$state" = "done" ] && break
	sleep 0.05
done
if [ "$state" != "done" ]; then
	echo "run $runid never completed (state: $state)" >&2
	cat "$tmpdir/zccd.log" >&2
	exit 1
fi
sleep 0.3 # let the sampler take a post-completion sample
# Every log line that names the run must carry it as run_id=<id>: the
# lifecycle greps out of the log stream by correlation key alone.
lifecycle=$(grep -c "run_id=$runid" "$tmpdir/zccd.log" || true)
if [ "$lifecycle" -lt 3 ]; then
	echo "only $lifecycle log lines carry run_id=$runid (want admitted/started/finished at least):" >&2
	cat "$tmpdir/zccd.log" >&2
	exit 1
fi
if grep "$runid" "$tmpdir/zccd.log" | grep -v "run_id=$runid" | grep -q .; then
	echo "log lines mention $runid without a run_id key:" >&2
	grep "$runid" "$tmpdir/zccd.log" | grep -v "run_id=$runid" >&2
	exit 1
fi
for m in "run admitted" "run started" "run finished"; do
	if ! grep "run_id=$runid" "$tmpdir/zccd.log" | grep -q "msg=\"$m\""; then
		echo "no \"$m\" log line for $runid" >&2
		cat "$tmpdir/zccd.log" >&2
		exit 1
	fi
done
# The time-series ring must have accumulated real history.
curl -fsS "http://$daddr/v1/timeseries" >"$tmpdir/ts.json"
samples=$(awk '/"times": \[/{f=1;next} f&&/\]/{exit} f{n++} END{print n+0}' "$tmpdir/ts.json")
if [ "$samples" -lt 2 ]; then
	echo "/v1/timeseries has $samples samples (want >= 2):" >&2
	cat "$tmpdir/ts.json" >&2
	exit 1
fi
# /metrics must expose the lifecycle histograms.
curl -fsS "http://$daddr/metrics" >"$tmpdir/zccd-metrics.prom"
for h in admission_wait_seconds queue_wait_seconds exec_seconds park_seconds; do
	if ! grep -q "zccloud_serve_${h}_bucket" "$tmpdir/zccd-metrics.prom"; then
		echo "/metrics is missing the serve.$h histogram" >&2
		exit 1
	fi
done
# The dashboard renders one frame against the live daemon and exits 0.
"$tmpdir/zcctop" -once -url "http://$daddr" >"$tmpdir/zcctop.out"
if ! grep -q "completed" "$tmpdir/zcctop.out"; then
	echo "zcctop -once frame looks empty:" >&2
	cat "$tmpdir/zcctop.out" >&2
	exit 1
fi
kill -TERM "$zccdpid"
wait "$zccdpid" || { echo "zccd drain exited nonzero" >&2; exit 1; }
zccdpid=""

echo "== netchaos flaky-link sweep smoke test"
# One agent reaches zccd only through a lossy netchaos proxy (added
# latency, 5% chunk drops). The sweep must still land exactly once per
# cell with tables byte-identical to a single-process run — the agent's
# retry policy, not luck, absorbs the faults.
go build -o "$tmpdir/zccagent" ./cmd/zccagent
go build -o "$tmpdir/netchaos" ./cmd/netchaos
"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 1 -data "$tmpdir/flaky-data" \
	2>"$tmpdir/flaky-zccd.err" &
zccdpid=$!
faddr=""
for _ in $(seq 1 100); do
	faddr=$(sed -n 's/.*msg=serving .*addr=\([^ ]*\).*/\1/p' "$tmpdir/flaky-zccd.err" | head -n 1)
	[ -n "$faddr" ] && break
	kill -0 "$zccdpid" 2>/dev/null || { cat "$tmpdir/flaky-zccd.err" >&2; exit 1; }
	sleep 0.05
done
[ -n "$faddr" ] || { echo "zccd never logged its address" >&2; exit 1; }
"$tmpdir/netchaos" -target "$faddr" -seed 7 -latency 1ms -drop 0.05 \
	>"$tmpdir/flaky-proxy.out" 2>&1 &
proxypid=$!
chaospids="$proxypid"
paddr=""
for _ in $(seq 1 100); do
	paddr=$(sed -n 's/.*msg=proxying addr=\([^ ]*\).*/\1/p' "$tmpdir/flaky-proxy.out" | head -n 1)
	[ -n "$paddr" ] && break
	kill -0 "$proxypid" 2>/dev/null || { cat "$tmpdir/flaky-proxy.out" >&2; exit 1; }
	sleep 0.05
done
[ -n "$paddr" ] || { echo "netchaos never reported its address" >&2; exit 1; }
"$tmpdir/zccagent" -server "http://$paddr" -name flaky -poll 50ms \
	2>"$tmpdir/flaky-agent.err" &
agentpid=$!
chaospids="$chaospids $agentpid"
flakycells="table1,table2,table4"
sweepid=$(curl -fsS -XPOST "http://$faddr/v1/sweeps" \
	-d "{\"experiments\": [$(echo "$flakycells" | sed 's/[^,]*/"&"/g')], \"seed\": 9, \"dir\": \"flaky\"}" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -n 1)
[ -n "$sweepid" ] || { echo "flaky sweep submission failed" >&2; exit 1; }
swdone=0
for _ in $(seq 1 600); do
	flat=$(curl -s "http://$faddr/v1/sweeps/$sweepid" | tr -d ' \n\t')
	case $flat in
	*'"done":true'*)
		swdone=1
		break
		;;
	esac
	sleep 0.1
done
if [ "$swdone" -ne 1 ]; then
	echo "flaky-link sweep never finished; last view: ${flat:-}" >&2
	cat "$tmpdir/flaky-agent.err" >&2
	exit 1
fi
"$tmpdir/zccexp" -quick -seed 9 -ids "$flakycells" -run-dir "$tmpdir/flaky-cmp" -o /dev/null >/dev/null
for cell in $(echo "$flakycells" | tr ',' ' '); do
	nok=$(grep -c "\"id\":\"$cell\",\"status\":\"ok\"" "$tmpdir/flaky-data/sweeps/flaky/cells.jsonl" || true)
	if [ "$nok" -ne 1 ]; then
		echo "flaky-link cell $cell has $nok ok records, want exactly 1" >&2
		exit 1
	fi
	fleet_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$tmpdir/flaky-data/sweeps/flaky/cells.jsonl" | sed 's/.*"table"://')
	solo_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$tmpdir/flaky-cmp/cells.jsonl" | sed 's/.*"table"://')
	if [ -z "$fleet_table" ] || [ "$fleet_table" != "$solo_table" ]; then
		echo "flaky-link cell $cell: table diverges from single-process run" >&2
		exit 1
	fi
done
kill -TERM "$agentpid"
wait "$agentpid" || { echo "agent drain exited nonzero" >&2; cat "$tmpdir/flaky-agent.err" >&2; exit 1; }
kill -TERM "$zccdpid"
wait "$zccdpid" || { echo "zccd drain exited nonzero" >&2; exit 1; }
zccdpid=""
kill -TERM "$proxypid" 2>/dev/null || true
wait "$proxypid" 2>/dev/null || true
chaospids=""

echo "== disabled-instrumentation zero-alloc benchmarks"
out=$(go test ./internal/obs -run '^$' -bench 'BenchmarkNopTracer|BenchmarkNopLogger' -benchmem -benchtime 100x
	go test ./internal/admit -run '^$' -bench 'BenchmarkAdmitDecision' -benchmem -benchtime 100x)
echo "$out"
for b in BenchmarkNopTracer BenchmarkNopLogger BenchmarkAdmitDecision; do
	allocs=$(echo "$out" | awk -v b="$b" '$0 ~ b {for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')
	if [ "$allocs" != "0" ]; then
		echo "$b allocates ($allocs allocs/op, want 0)" >&2
		exit 1
	fi
done

echo "== ok"
