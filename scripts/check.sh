#!/bin/sh
# Repo health check: formatting, vet, build, tests (with race detector),
# and the zero-allocation guarantee for disabled instrumentation.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== nop-tracer zero-alloc benchmark"
out=$(go test ./internal/obs -run '^$' -bench BenchmarkNopTracer -benchmem -benchtime 100x)
echo "$out"
allocs=$(echo "$out" | awk '/BenchmarkNopTracer/ {for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ "$allocs" != "0" ]; then
	echo "BenchmarkNopTracer allocates ($allocs allocs/op, want 0)" >&2
	exit 1
fi

echo "== ok"
