#!/bin/sh
# Repo health check: formatting, vet, build, tests (with race detector),
# and the zero-allocation guarantee for disabled instrumentation.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz seed corpora"
go test ./internal/swf ./internal/miso -run '^Fuzz' -count=1

echo "== fuzz smoke (5s each)"
go test ./internal/swf -fuzz FuzzParse -fuzztime 5s
go test ./internal/miso -fuzz FuzzReadCSV -fuzztime 5s

echo "== same-seed faulted-run determinism"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/zccsim" ./cmd/zccsim
for i in 1 2; do
	"$tmpdir/zccsim" -days 7 -mira-nodes 2048 -zc-factor 1 -zc-duty 0.5 \
		-kill-requeue -mtbf 12 -brownout 0.25 -forecast-err 0.5 -retry-limit 4 \
		-seed 7 -trace "$tmpdir/t$i.jsonl" >"$tmpdir/out$i.txt"
done
if ! cmp -s "$tmpdir/t1.jsonl" "$tmpdir/t2.jsonl"; then
	echo "faulted event traces differ between same-seed runs" >&2
	exit 1
fi
if ! cmp -s "$tmpdir/out1.txt" "$tmpdir/out2.txt"; then
	echo "faulted CLI output differs between same-seed runs" >&2
	exit 1
fi

echo "== nop-tracer zero-alloc benchmark"
out=$(go test ./internal/obs -run '^$' -bench BenchmarkNopTracer -benchmem -benchtime 100x)
echo "$out"
allocs=$(echo "$out" | awk '/BenchmarkNopTracer/ {for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ "$allocs" != "0" ]; then
	echo "BenchmarkNopTracer allocates ($allocs allocs/op, want 0)" >&2
	exit 1
fi

echo "== ok"
