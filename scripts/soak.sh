#!/bin/sh
# Chaos soaks for the zccd serving daemon, driving real binaries.
#
# Daemon mode (default):  scripts/soak.sh [rounds]
#   Hammer zccd with concurrent submits (valid, faulted, long,
#   malformed), random cancels, then SIGTERM it mid-traffic. Asserts:
#
#   - the daemon exits 0 within the drain deadline;
#   - every accepted run's journal record ends in a terminal state;
#   - checkpointed runs left resumable snapshot files behind.
#
# Agent mode:  scripts/soak.sh agents
#   Distributed-sweep chaos: start zccd with short fleet TTLs, spawn
#   three zccagent workers, submit a sweep, SIGKILL the agent holding
#   the longest cell mid-run. Asserts:
#
#   - the dead agent is reaped and its cell requeued (/metrics);
#   - every cell lands terminal with exactly one ok record (journal);
#   - the fleet's tables are byte-identical to a single-process
#     zccexp run of the same sweep;
#   - surviving agents and the daemon drain cleanly on SIGTERM.
#
# Power mode:  scripts/soak.sh power
#   Renewable-aware admission chaos: zccd follows a scripted
#   stranded-power schedule (time-compressed via -power-speed). A
#   feasible run is admitted and completes inside the window; a
#   deadline-infeasible submission during the dark gap is shed with a
#   Retry-After derived from the next window start; a park-policy
#   submission is accepted degraded, survives a SIGKILL + restart of
#   the daemon while the window is closed, and completes once the next
#   window opens. Asserts:
#
#   - the shed 429's Retry-After is window-scale, not the 1h cap;
#   - the parked run is re-adopted after the crash (log + /metrics);
#   - no accepted run ever lands failed (no mid-window kills);
#   - the daemon drains cleanly on SIGTERM.
#
# Restart mode:  scripts/soak.sh restart
#   Control-plane crash chaos: agents talk to zccd through a netchaos
#   proxy (latency + random connection drops), zccd is SIGKILLed
#   mid-sweep — no drain, no bookkeeping — and restarted on the same
#   address and data directory. Asserts:
#
#   - the restarted daemon re-adopts the open sweep from its registry
#     journal (log line);
#   - agents ride the outage on their retry policy, re-register, and
#     finish the sweep;
#   - every cell lands with exactly one ok record despite requeued
#     in-flight cells and fenced pre-crash tokens;
#   - tables are byte-identical to a single-process zccexp run;
#   - agents and the restarted daemon drain cleanly on SIGTERM.
set -eu
cd "$(dirname "$0")/.."

mode=${1:-3}
tmpdir=$(mktemp -d)
daemonpid=""
agentpids=""
proxypid=""
trap 'rm -rf "$tmpdir"; for p in $daemonpid $agentpids $proxypid; do kill -9 "$p" 2>/dev/null || true; done' EXIT

# wait_addr <stderr-log> <pid>: waits for the daemon's "serving" line
# and prints the bound address.
wait_addr() {
	_log=$1
	_pid=$2
	_addr=""
	for _ in $(seq 1 200); do
		_addr=$(sed -n 's/.*msg=serving .*addr=\([^ ]*\).*/\1/p' "$_log" | head -n 1)
		[ -n "$_addr" ] && break
		if ! kill -0 "$_pid" 2>/dev/null; then
			echo "daemon died on startup:" >&2
			cat "$_log" >&2
			exit 1
		fi
		sleep 0.05
	done
	if [ -z "$_addr" ]; then
		echo "daemon never reported its address" >&2
		cat "$_log" >&2
		exit 1
	fi
	printf '%s' "$_addr"
}

# flatjson <url>: fetches a pretty-printed JSON endpoint as one line so
# plain sh can grep it.
flatjson() {
	curl -s "$1" | tr -d ' \n\t'
}

if [ "$mode" = "agents" ]; then
	cells="table1,table2,table4,table5,table7,fig5,fig6,fig7,fig11"
	longcell="fig11" # the slowest cell: the one we SIGKILL an agent under

	echo "== build (zccd + zccagent + zccexp)"
	go build -o "$tmpdir/zccd" ./cmd/zccd
	go build -o "$tmpdir/zccagent" ./cmd/zccagent
	go build -o "$tmpdir/zccexp" ./cmd/zccexp

	echo "== start control plane (short fleet TTLs)"
	"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 2 -data "$tmpdir/data" \
		-agent-ttl 2s -lease-ttl 3s -fleet-backoff 200ms -fleet-backoff-cap 1s \
		2>"$tmpdir/zccd.err" &
	daemonpid=$!
	addr=$(wait_addr "$tmpdir/zccd.err" "$daemonpid")
	echo "daemon at $addr (pid $daemonpid)"

	echo "== start 3 agents"
	for i in 1 2 3; do
		"$tmpdir/zccagent" -server "http://$addr" -name "agent$i" -poll 50ms \
			2>"$tmpdir/agent$i.err" &
		eval "apid$i=$!"
		agentpids="$agentpids $!"
	done

	echo "== submit sweep ($cells)"
	curl -s -o "$tmpdir/sweep.json" -XPOST "http://$addr/v1/sweeps" \
		-d "{\"experiments\": [$(echo "$cells" | sed 's/[^,]*/"&"/g')], \"seed\": 42, \"dir\": \"chaos\"}"
	sweepid=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/sweep.json" | head -n 1)
	if [ -z "$sweepid" ]; then
		echo "sweep submission failed:" >&2
		cat "$tmpdir/sweep.json" >&2
		exit 1
	fi
	echo "sweep $sweepid"

	echo "== SIGKILL the agent holding $longcell"
	victim=""
	for _ in $(seq 1 400); do
		flat=$(flatjson "http://$addr/v1/sweeps/$sweepid")
		holder=$(printf '%s' "$flat" |
			grep -o "\"id\":\"$longcell\",\"state\":\"leased\"[^}]*" |
			sed -n 's/.*"agent":"\([^"]*\)".*/\1/p')
		if [ -n "$holder" ]; then
			aflat=$(flatjson "http://$addr/v1/agents")
			victim=$(printf '%s' "$aflat" |
				grep -o "\"id\":\"$holder\",\"name\":\"[^\"]*\"" |
				sed 's/.*"name":"\([^"]*\)".*/\1/')
			break
		fi
		case $flat in
		*'"done":true'*)
			echo "sweep finished before chaos could be injected; $longcell too fast" >&2
			exit 1
			;;
		esac
		sleep 0.02
	done
	if [ -z "$victim" ]; then
		echo "no agent ever held $longcell" >&2
		exit 1
	fi
	case $victim in
	agent1) kill -9 "$apid1" ;;
	agent2) kill -9 "$apid2" ;;
	agent3) kill -9 "$apid3" ;;
	*)
		echo "unknown victim '$victim'" >&2
		exit 1
		;;
	esac
	echo "killed $victim (held $longcell under agent id $holder)"

	echo "== wait for the survivors to finish the sweep"
	swdone=0
	for _ in $(seq 1 600); do
		flat=$(flatjson "http://$addr/v1/sweeps/$sweepid")
		case $flat in
		*'"done":true'*)
			swdone=1
			break
			;;
		esac
		sleep 0.1
	done
	if [ "$swdone" -ne 1 ]; then
		echo "sweep never finished; last view: $flat" >&2
		cat "$tmpdir/zccd.err" >&2
		exit 1
	fi
	case $flat in
	*'"abandoned":0'*) ;;
	*)
		echo "sweep abandoned cells: $flat" >&2
		exit 1
		;;
	esac

	echo "== invariants: reap + requeue visible in /metrics"
	curl -s "http://$addr/metrics" >"$tmpdir/metrics.txt"
	reaped=$(sed -n 's/^[a-z_]*fleet_agents_reaped \([0-9][0-9]*\)$/\1/p' "$tmpdir/metrics.txt")
	requeues=$(sed -n 's/^[a-z_]*fleet_requeues \([0-9][0-9]*\)$/\1/p' "$tmpdir/metrics.txt")
	if [ "${reaped:-0}" -lt 1 ] || [ "${requeues:-0}" -lt 1 ]; then
		echo "metrics show reaped=$reaped requeues=$requeues; want both >= 1" >&2
		exit 1
	fi

	echo "== invariants: every cell terminal exactly once"
	journal="$tmpdir/data/sweeps/chaos/cells.jsonl"
	[ -f "$journal" ] || { echo "no sweep journal at $journal" >&2; exit 1; }
	for cell in $(echo "$cells" | tr ',' ' '); do
		nok=$(grep -c "\"id\":\"$cell\",\"status\":\"ok\"" "$journal" || true)
		if [ "$nok" -ne 1 ]; then
			echo "cell $cell has $nok ok records, want exactly 1" >&2
			grep "\"id\":\"$cell\"" "$journal" >&2 || true
			exit 1
		fi
	done

	echo "== invariants: tables match a single-process run"
	"$tmpdir/zccexp" -quick -seed 42 -ids "$cells" -run-dir "$tmpdir/cmp" -o /dev/null
	for cell in $(echo "$cells" | tr ',' ' '); do
		fleet_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$journal" | tail -n 1 | sed 's/.*"table"://')
		solo_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$tmpdir/cmp/cells.jsonl" | tail -n 1 | sed 's/.*"table"://')
		if [ -z "$fleet_table" ] || [ "$fleet_table" != "$solo_table" ]; then
			echo "cell $cell: fleet table diverges from single-process run" >&2
			echo "fleet: $fleet_table" >&2
			echo "solo:  $solo_table" >&2
			exit 1
		fi
	done

	echo "== drain survivors and daemon"
	for i in 1 2 3; do
		[ "agent$i" = "$victim" ] && continue
		eval "apid=\$apid$i"
		kill -TERM "$apid"
		wait "$apid" && arc=0 || arc=$?
		if [ "$arc" -ne 0 ]; then
			echo "agent$i exited $arc, want 0; stderr:" >&2
			cat "$tmpdir/agent$i.err" >&2
			exit 1
		fi
	done
	kill -TERM "$daemonpid"
	wait "$daemonpid" && rc=0 || rc=$?
	daemonpid=""
	agentpids=""
	if [ "$rc" -ne 0 ]; then
		echo "daemon exited $rc, want 0; stderr:" >&2
		cat "$tmpdir/zccd.err" >&2
		exit 1
	fi
	echo "reaped=$reaped requeues=$requeues; all cells exactly-once and byte-identical"
	echo "== ok"
	exit 0
fi

if [ "$mode" = "power" ]; then
	echo "== build (zccd)"
	go build -o "$tmpdir/zccd" ./cmd/zccd

	# Schedule (schedule seconds, played at 10x): window A [0,30),
	# a dark gap [30,80), then a long window B [80,2000). Wall clock:
	# A is 0-3s after boot, the gap 3-8s, B from 8s on.
	printf 'start,end\n0,30\n80,2000\n' >"$tmpdir/sched.csv"
	power_flags="-power-trace $tmpdir/sched.csv -power-policy shed -power-speed 10 -power-tick 50ms"

	echo "== start daemon on the scripted power schedule"
	# shellcheck disable=SC2086
	"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 2 -data "$tmpdir/data" \
		$power_flags 2>"$tmpdir/zccd.err" &
	daemonpid=$!
	addr=$(wait_addr "$tmpdir/zccd.err" "$daemonpid")
	echo "daemon at $addr (pid $daemonpid)"

	echo "== window A open: a feasible run is admitted and completes"
	code=$(curl -s -o "$tmpdir/feasible.json" -w '%{http_code}' -XPOST "http://$addr/v1/runs" \
		-d '{"days": 2, "mira_nodes": 4096, "deadline_seconds": 3600, "cost_hint_seconds": 5}')
	if [ "$code" != "202" ]; then
		echo "feasible submit = $code, want 202:" >&2
		cat "$tmpdir/feasible.json" >&2
		exit 1
	fi
	fid=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/feasible.json" | head -n 1)
	fdone=0
	for _ in $(seq 1 100); do
		case $(flatjson "http://$addr/v1/runs/$fid") in
		*'"state":"done"'*)
			fdone=1
			break
			;;
		esac
		sleep 0.05
	done
	if [ "$fdone" -ne 1 ]; then
		echo "feasible run $fid never completed inside the window" >&2
		cat "$tmpdir/zccd.err" >&2
		exit 1
	fi

	echo "== wait for the dark gap"
	closed=0
	for _ in $(seq 1 200); do
		case $(flatjson "http://$addr/status") in
		*'"window_open":false'*)
			closed=1
			break
			;;
		esac
		sleep 0.05
	done
	[ "$closed" -eq 1 ] || { echo "power window never closed" >&2; exit 1; }

	echo "== gap: deadline-infeasible submission is shed with a window-derived Retry-After"
	code=$(curl -s -D "$tmpdir/shed.hdr" -o "$tmpdir/shed.json" -w '%{http_code}' \
		-XPOST "http://$addr/v1/runs" \
		-d '{"days": 2, "mira_nodes": 4096, "deadline_seconds": 2, "cost_hint_seconds": 60}')
	if [ "$code" != "429" ]; then
		echo "infeasible submit = $code, want 429:" >&2
		cat "$tmpdir/shed.json" >&2
		exit 1
	fi
	ra=$(sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\).*/\1/p' "$tmpdir/shed.hdr" | head -n 1)
	# The gap is <= 5 wall seconds wide; with jitter the hint must stay
	# window-scale (a handful of seconds), never the 3600 s power cap.
	if [ -z "$ra" ] || [ "$ra" -lt 1 ] || [ "$ra" -gt 15 ]; then
		echo "shed Retry-After = '$ra', want window-derived seconds in [1, 15]" >&2
		exit 1
	fi

	echo "== gap: a park-policy submission is accepted degraded"
	# Padded cost (300 wall s x speed 10 x 1.2 safety = 3600 schedule s)
	# exceeds window B's 1920 schedule seconds, so the run cannot be
	# admitted outright; the 600 s wall deadline leaves plenty of room to
	# finish once the window opens and the run is resubmitted.
	code=$(curl -s -o "$tmpdir/park.json" -w '%{http_code}' -XPOST "http://$addr/v1/runs" \
		-d '{"days": 2, "mira_nodes": 4096, "deadline_seconds": 600, "cost_hint_seconds": 300, "power_policy": "park"}')
	if [ "$code" != "202" ]; then
		echo "park submit = $code, want 202:" >&2
		cat "$tmpdir/park.json" >&2
		exit 1
	fi
	pid=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/park.json" | head -n 1)
	case $(flatjson "http://$addr/v1/runs/$pid") in
	*'"state":"parked-for-power"'*) ;;
	*)
		echo "park run $pid not in parked-for-power state" >&2
		exit 1
		;;
	esac
	[ -f "$tmpdir/data/parked/$pid.json" ] || {
		echo "no durable parked record for $pid" >&2
		exit 1
	}

	echo "== SIGKILL zccd with the run parked and the window still closed"
	kill -9 "$daemonpid"
	echo "killed zccd (pid $daemonpid)"

	echo "== restart zccd on the same schedule and data directory"
	# shellcheck disable=SC2086
	"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 2 -data "$tmpdir/data" \
		$power_flags 2>"$tmpdir/zccd2.err" &
	daemonpid=$!
	addr=$(wait_addr "$tmpdir/zccd2.err" "$daemonpid")
	echo "daemon back at $addr (pid $daemonpid)"
	if ! grep -q 'msg="parked run re-adopted"' "$tmpdir/zccd2.err"; then
		echo "restarted daemon never re-adopted the parked run:" >&2
		cat "$tmpdir/zccd2.err" >&2
		exit 1
	fi

	echo "== parked run completes once window B opens"
	pdone=0
	for _ in $(seq 1 400); do
		case $(flatjson "http://$addr/v1/runs/$pid") in
		*'"state":"done"'*)
			pdone=1
			break
			;;
		esac
		sleep 0.05
	done
	if [ "$pdone" -ne 1 ]; then
		echo "parked run $pid never completed; last: $(flatjson "http://$addr/v1/runs/$pid")" >&2
		cat "$tmpdir/zccd2.err" >&2
		exit 1
	fi

	echo "== invariants: re-adoption and resubmission visible in /metrics"
	curl -s "http://$addr/metrics" >"$tmpdir/metrics.txt"
	readopted=$(sed -n 's/^[a-z_]*power_readopted \([0-9][0-9]*\)$/\1/p' "$tmpdir/metrics.txt")
	resubmitted=$(sed -n 's/^[a-z_]*power_resubmitted \([0-9][0-9]*\)$/\1/p' "$tmpdir/metrics.txt")
	if [ "${readopted:-0}" -lt 1 ] || [ "${resubmitted:-0}" -lt 1 ]; then
		echo "metrics show readopted=$readopted resubmitted=$resubmitted; want both >= 1" >&2
		exit 1
	fi

	echo "== invariants: no accepted run failed (no mid-window kills)"
	journal="$tmpdir/data/runs.jsonl"
	[ -f "$journal" ] || { echo "no run journal at $journal" >&2; exit 1; }
	nfailed=$(grep -c '"state":"failed"' "$journal" || true)
	if [ "$nfailed" -ne 0 ]; then
		echo "journal has $nfailed failed runs; power control must not kill work" >&2
		grep '"state":"failed"' "$journal" >&2
		exit 1
	fi

	echo "== drain"
	kill -TERM "$daemonpid"
	wait "$daemonpid" && rc=0 || rc=$?
	daemonpid=""
	if [ "$rc" -ne 0 ]; then
		echo "daemon exited $rc, want 0; stderr:" >&2
		cat "$tmpdir/zccd2.err" >&2
		exit 1
	fi
	echo "shed Retry-After=${ra}s (window-derived); parked run survived SIGKILL and completed"
	echo "== ok"
	exit 0
fi

if [ "$mode" = "restart" ]; then
	cells="table1,table2,table4,table5,table7,fig5,fig6,fig7,fig11"

	echo "== build (zccd + zccagent + zccexp + netchaos)"
	go build -o "$tmpdir/zccd" ./cmd/zccd
	go build -o "$tmpdir/zccagent" ./cmd/zccagent
	go build -o "$tmpdir/zccexp" ./cmd/zccexp
	go build -o "$tmpdir/netchaos" ./cmd/netchaos

	echo "== start control plane (short fleet TTLs)"
	"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 2 -data "$tmpdir/data" \
		-agent-ttl 2s -lease-ttl 3s -fleet-backoff 200ms -fleet-backoff-cap 1s \
		2>"$tmpdir/zccd.err" &
	daemonpid=$!
	addr=$(wait_addr "$tmpdir/zccd.err" "$daemonpid")
	echo "daemon at $addr (pid $daemonpid)"

	echo "== start netchaos proxy between agents and daemon"
	"$tmpdir/netchaos" -target "$addr" -seed 42 -latency 2ms -jitter 3ms -drop 0.02 \
		>"$tmpdir/chaos.out" 2>&1 &
	proxypid=$!
	proxyaddr=""
	for _ in $(seq 1 100); do
		proxyaddr=$(sed -n 's/.*msg=proxying addr=\([^ ]*\).*/\1/p' "$tmpdir/chaos.out" | head -n 1)
		[ -n "$proxyaddr" ] && break
		if ! kill -0 "$proxypid" 2>/dev/null; then
			echo "netchaos died on startup:" >&2
			cat "$tmpdir/chaos.out" >&2
			exit 1
		fi
		sleep 0.05
	done
	[ -n "$proxyaddr" ] || { echo "netchaos never reported its address" >&2; exit 1; }
	echo "chaos proxy at $proxyaddr -> $addr (latency 2ms±3ms, drop 2%)"

	echo "== start 2 agents through the proxy"
	for i in 1 2; do
		"$tmpdir/zccagent" -server "http://$proxyaddr" -name "agent$i" \
			-poll 50ms -parallel 2 2>"$tmpdir/agent$i.err" &
		agentpids="$agentpids $!"
	done

	echo "== submit sweep ($cells)"
	curl -s -o "$tmpdir/sweep.json" -XPOST "http://$addr/v1/sweeps" \
		-d "{\"experiments\": [$(echo "$cells" | sed 's/[^,]*/"&"/g')], \"seed\": 42, \"dir\": \"chaos\"}"
	sweepid=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/sweep.json" | head -n 1)
	if [ -z "$sweepid" ]; then
		echo "sweep submission failed:" >&2
		cat "$tmpdir/sweep.json" >&2
		exit 1
	fi
	echo "sweep $sweepid"

	echo "== SIGKILL zccd after the first completion, mid-sweep"
	killed=0
	for _ in $(seq 1 600); do
		flat=$(flatjson "http://$addr/v1/sweeps/$sweepid")
		case $flat in
		*'"done":true'*)
			echo "sweep finished before the kill; not enough work in flight" >&2
			exit 1
			;;
		*'"completed":0'*) ;;
		*'"completed":'*)
			killed=1
			break
			;;
		esac
		sleep 0.02
	done
	if [ "$killed" -ne 1 ]; then
		echo "no cell completed before the kill window closed" >&2
		exit 1
	fi
	kill -9 "$daemonpid"
	echo "killed zccd (pid $daemonpid) with leases in flight"

	echo "== restart zccd on the same address and data directory"
	"$tmpdir/zccd" -addr "$addr" -workers 2 -data "$tmpdir/data" \
		-agent-ttl 2s -lease-ttl 3s -fleet-backoff 200ms -fleet-backoff-cap 1s \
		2>"$tmpdir/zccd2.err" &
	daemonpid=$!
	wait_addr "$tmpdir/zccd2.err" "$daemonpid" >/dev/null
	echo "daemon back at $addr (pid $daemonpid)"

	if ! grep -q 'msg="sweep re-adopted"' "$tmpdir/zccd2.err"; then
		echo "restarted daemon never re-adopted the sweep:" >&2
		cat "$tmpdir/zccd2.err" >&2
		exit 1
	fi

	echo "== wait for the re-adopted sweep to finish"
	swdone=0
	for _ in $(seq 1 600); do
		flat=$(flatjson "http://$addr/v1/sweeps/$sweepid")
		case $flat in
		*'"done":true'*)
			swdone=1
			break
			;;
		esac
		sleep 0.1
	done
	if [ "$swdone" -ne 1 ]; then
		echo "sweep never finished after restart; last view: $flat" >&2
		cat "$tmpdir/zccd2.err" >&2
		cat "$tmpdir/agent1.err" >&2
		exit 1
	fi
	case $flat in
	*'"abandoned":0'*) ;;
	*)
		echo "sweep abandoned cells after restart: $flat" >&2
		exit 1
		;;
	esac

	echo "== invariants: every cell terminal exactly once across both incarnations"
	journal="$tmpdir/data/sweeps/chaos/cells.jsonl"
	[ -f "$journal" ] || { echo "no sweep journal at $journal" >&2; exit 1; }
	for cell in $(echo "$cells" | tr ',' ' '); do
		nok=$(grep -c "\"id\":\"$cell\",\"status\":\"ok\"" "$journal" || true)
		if [ "$nok" -ne 1 ]; then
			echo "cell $cell has $nok ok records, want exactly 1" >&2
			grep "\"id\":\"$cell\"" "$journal" >&2 || true
			exit 1
		fi
	done

	echo "== invariants: tables match a single-process run"
	"$tmpdir/zccexp" -quick -seed 42 -ids "$cells" -run-dir "$tmpdir/cmp" -o /dev/null
	for cell in $(echo "$cells" | tr ',' ' '); do
		fleet_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$journal" | tail -n 1 | sed 's/.*"table"://')
		solo_table=$(grep "\"id\":\"$cell\",\"status\":\"ok\"" "$tmpdir/cmp/cells.jsonl" | tail -n 1 | sed 's/.*"table"://')
		if [ -z "$fleet_table" ] || [ "$fleet_table" != "$solo_table" ]; then
			echo "cell $cell: fleet table diverges from single-process run" >&2
			echo "fleet: $fleet_table" >&2
			echo "solo:  $solo_table" >&2
			exit 1
		fi
	done

	echo "== drain agents and the restarted daemon"
	for p in $agentpids; do
		kill -TERM "$p"
		wait "$p" && arc=0 || arc=$?
		if [ "$arc" -ne 0 ]; then
			echo "an agent exited $arc, want 0; stderr:" >&2
			cat "$tmpdir"/agent*.err >&2
			exit 1
		fi
	done
	kill -TERM "$daemonpid"
	wait "$daemonpid" && rc=0 || rc=$?
	daemonpid=""
	agentpids=""
	kill -TERM "$proxypid" 2>/dev/null || true
	wait "$proxypid" 2>/dev/null || true
	proxypid=""
	if [ "$rc" -ne 0 ]; then
		echo "restarted daemon exited $rc, want 0; stderr:" >&2
		cat "$tmpdir/zccd2.err" >&2
		exit 1
	fi
	echo "survived SIGKILL + restart: re-adopted, exactly-once, byte-identical"
	echo "== ok"
	exit 0
fi

rounds=$mode

echo "== build"
go build -o "$tmpdir/zccd" ./cmd/zccd

echo "== start daemon"
"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 4 -queue 8 \
	-drain-grace 2s -data "$tmpdir/data" 2>"$tmpdir/zccd.err" &
daemonpid=$!
addr=$(wait_addr "$tmpdir/zccd.err" "$daemonpid")
echo "daemon at $addr (pid $daemonpid)"

# The chaos mix: quick runs, a faulted+checked run, a long run the drain
# will land on, an experiment, and garbage the API must 400.
spec_for() {
	case $(( $1 % 5 )) in
	0) echo '{"days": 2, "mira_nodes": 4096}' ;;
	1) echo '{"days": 3, "mira_nodes": 4096, "zc_factor": 1, "kill_requeue": true, "mtbf_hours": 12, "retry_limit": 3, "backoff_hours": 1, "backoff_jitter": true, "check": true}' ;;
	2) echo '{"days": 3650, "mira_nodes": 4096, "scale": 4}' ;;
	3) echo '{"experiment": "table5"}' ;;
	4) echo '{"bogus": 1}' ;;
	esac
}

echo "== chaos traffic ($rounds rounds x 4 clients)"
for c in 1 2 3 4; do
	(
		i=0
		while [ "$i" -lt "$rounds" ]; do
			body=$(spec_for $((c + i)))
			code=$(curl -s -o "$tmpdir/resp.$c.$i" -w '%{http_code}' \
				-XPOST "http://$addr/v1/runs" -d "$body" || echo 000)
			case $code in
			202)
				id=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/resp.$c.$i" | head -n 1)
				echo "$id" >>"$tmpdir/accepted.$c"
				# every third accepted run gets a cancel attempt
				if [ $(( (c + i) % 3 )) -eq 0 ]; then
					curl -s -o /dev/null -XDELETE "http://$addr/v1/runs/$id" || true
				fi
				;;
			400|429|503|000) ;; # refused, shed, draining, or torn down: fine
			*)
				echo "client $c: unexpected status $code for $body" >&2
				exit 1
				;;
			esac
			i=$((i + 1))
		done
	) &
done

# SIGTERM lands while clients are still firing.
sleep 1
echo "== SIGTERM mid-traffic"
kill -TERM "$daemonpid"
wait "$daemonpid" && rc=0 || rc=$?
daemonpid=""
wait # clients
if [ "$rc" -ne 0 ]; then
	echo "daemon exited $rc, want 0; stderr:" >&2
	cat "$tmpdir/zccd.err" >&2
	exit 1
fi

echo "== invariants"
journal="$tmpdir/data/runs.jsonl"
if [ ! -f "$journal" ]; then
	echo "no run journal at $journal" >&2
	exit 1
fi
cat "$tmpdir"/accepted.* 2>/dev/null | sort -u >"$tmpdir/accepted.all" || true
naccepted=$(wc -l <"$tmpdir/accepted.all")
if [ "$naccepted" -eq 0 ]; then
	echo "soak accepted no runs; traffic mix too hostile" >&2
	exit 1
fi
bad=0
while read -r id; do
	[ -n "$id" ] || continue
	final=$(grep "\"run\":\"$id\"" "$journal" | tail -n 1 |
		sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case $final in
	done|failed|cancelled|checkpointed) ;;
	*)
		echo "run $id final journal state '$final' not terminal" >&2
		bad=1
		;;
	esac
done <"$tmpdir/accepted.all"
[ "$bad" -eq 0 ] || exit 1

nckpt=$(grep -c '"state":"checkpointed"' "$journal" || true)
nsnap=$(ls "$tmpdir/data"/*.snapshot.json 2>/dev/null | wc -l)
if [ "$nckpt" -gt 0 ] && [ "$nsnap" -eq 0 ]; then
	echo "journal has $nckpt checkpointed runs but no snapshot files" >&2
	exit 1
fi
echo "accepted $naccepted runs, all terminal ($nckpt checkpointed, $nsnap snapshots)"
echo "== ok"
