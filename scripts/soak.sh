#!/bin/sh
# Chaos soak for the zccd serving daemon: hammer a real binary with
# concurrent submits (valid, faulted, long, malformed), random cancels,
# then SIGTERM it mid-traffic. Asserts:
#
#   - the daemon exits 0 within the drain deadline;
#   - every accepted run's journal record ends in a terminal state;
#   - checkpointed runs left resumable snapshot files behind.
#
# Usage: scripts/soak.sh [rounds]   (default 3 submit rounds per client)
set -eu
cd "$(dirname "$0")/.."

rounds=${1:-3}
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"; kill "$daemonpid" 2>/dev/null || true' EXIT
daemonpid=""

echo "== build"
go build -o "$tmpdir/zccd" ./cmd/zccd

echo "== start daemon"
"$tmpdir/zccd" -addr 127.0.0.1:0 -workers 4 -queue 8 \
	-drain-grace 2s -data "$tmpdir/data" 2>"$tmpdir/zccd.err" &
daemonpid=$!
addr=""
for _ in $(seq 1 100); do
	addr=$(sed -n 's/.*msg=serving .*addr=\([^ ]*\).*/\1/p' "$tmpdir/zccd.err" | head -n 1)
	[ -n "$addr" ] && break
	if ! kill -0 "$daemonpid" 2>/dev/null; then
		echo "daemon died on startup:" >&2
		cat "$tmpdir/zccd.err" >&2
		exit 1
	fi
	sleep 0.05
done
if [ -z "$addr" ]; then
	echo "daemon never reported its address" >&2
	cat "$tmpdir/zccd.err" >&2
	exit 1
fi
echo "daemon at $addr (pid $daemonpid)"

# The chaos mix: quick runs, a faulted+checked run, a long run the drain
# will land on, an experiment, and garbage the API must 400.
spec_for() {
	case $(( $1 % 5 )) in
	0) echo '{"days": 2, "mira_nodes": 4096}' ;;
	1) echo '{"days": 3, "mira_nodes": 4096, "zc_factor": 1, "kill_requeue": true, "mtbf_hours": 12, "retry_limit": 3, "backoff_hours": 1, "backoff_jitter": true, "check": true}' ;;
	2) echo '{"days": 3650, "mira_nodes": 4096, "scale": 4}' ;;
	3) echo '{"experiment": "table5"}' ;;
	4) echo '{"bogus": 1}' ;;
	esac
}

echo "== chaos traffic ($rounds rounds x 4 clients)"
for c in 1 2 3 4; do
	(
		i=0
		while [ "$i" -lt "$rounds" ]; do
			body=$(spec_for $((c + i)))
			code=$(curl -s -o "$tmpdir/resp.$c.$i" -w '%{http_code}' \
				-XPOST "http://$addr/v1/runs" -d "$body" || echo 000)
			case $code in
			202)
				id=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$tmpdir/resp.$c.$i" | head -n 1)
				echo "$id" >>"$tmpdir/accepted.$c"
				# every third accepted run gets a cancel attempt
				if [ $(( (c + i) % 3 )) -eq 0 ]; then
					curl -s -o /dev/null -XDELETE "http://$addr/v1/runs/$id" || true
				fi
				;;
			400|429|503|000) ;; # refused, shed, draining, or torn down: fine
			*)
				echo "client $c: unexpected status $code for $body" >&2
				exit 1
				;;
			esac
			i=$((i + 1))
		done
	) &
done

# SIGTERM lands while clients are still firing.
sleep 1
echo "== SIGTERM mid-traffic"
kill -TERM "$daemonpid"
wait "$daemonpid" && rc=0 || rc=$?
daemonpid=""
wait # clients
if [ "$rc" -ne 0 ]; then
	echo "daemon exited $rc, want 0; stderr:" >&2
	cat "$tmpdir/zccd.err" >&2
	exit 1
fi

echo "== invariants"
journal="$tmpdir/data/runs.jsonl"
if [ ! -f "$journal" ]; then
	echo "no run journal at $journal" >&2
	exit 1
fi
cat "$tmpdir"/accepted.* 2>/dev/null | sort -u >"$tmpdir/accepted.all" || true
naccepted=$(wc -l <"$tmpdir/accepted.all")
if [ "$naccepted" -eq 0 ]; then
	echo "soak accepted no runs; traffic mix too hostile" >&2
	exit 1
fi
bad=0
while read -r id; do
	[ -n "$id" ] || continue
	final=$(grep "\"run\":\"$id\"" "$journal" | tail -n 1 |
		sed -n 's/.*"state":"\([^"]*\)".*/\1/p')
	case $final in
	done|failed|cancelled|checkpointed) ;;
	*)
		echo "run $id final journal state '$final' not terminal" >&2
		bad=1
		;;
	esac
done <"$tmpdir/accepted.all"
[ "$bad" -eq 0 ] || exit 1

nckpt=$(grep -c '"state":"checkpointed"' "$journal" || true)
nsnap=$(ls "$tmpdir/data"/*.snapshot.json 2>/dev/null | wc -l)
if [ "$nckpt" -gt 0 ] && [ "$nsnap" -eq 0 ]; then
	echo "journal has $nckpt checkpointed runs but no snapshot files" >&2
	exit 1
fi
echo "accepted $naccepted runs, all terminal ($nckpt checkpointed, $nsnap snapshots)"
echo "== ok"
