package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"zccloud/internal/experiments"
	"zccloud/internal/fleet"
	"zccloud/internal/serve"
)

// startControlPlane brings up a real serve.Server over httptest.
func startControlPlane(t *testing.T, dataDir string) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Workers: 1,
		DataDir: dataDir,
		Fleet: fleet.Config{
			LeaseTTL:   2 * time.Second,
			AgentTTL:   2 * time.Second,
			RetryLimit: 3,
			Backoff:    time.Millisecond,
			BackoffCap: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

// startAgent runs the agent body against the control plane and returns
// its ID, stop trigger, and exit channel.
func startAgent(t *testing.T, serverURL string, extra ...string) (string, chan struct{}, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	args := append([]string{"-server", serverURL, "-poll", "10ms", "-quiet"}, extra...)
	go func() { errc <- run(args, io.Discard, ready, stop) }()
	select {
	case id := <-ready:
		return id, stop, errc
	case err := <-errc:
		t.Fatalf("agent exited before registering: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("agent never registered")
	}
	return "", nil, nil
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if into != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(b, into); err != nil {
			t.Fatalf("unmarshal %s: %v (%s)", url, err, b)
		}
	}
	return resp.StatusCode
}

func waitSweepDone(t *testing.T, base, id string, wait time.Duration) fleet.SweepView {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view fleet.SweepView
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &view); err != nil {
			t.Fatalf("sweep view: %v (%s)", err, b)
		}
		if view.Done {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAgentRunsSweepMatchesSingleProcess is the acceptance check in
// miniature: a zccagent-executed sweep must produce, cell for cell, the
// same tables as running the experiments in-process with the same
// options.
func TestAgentRunsSweepMatchesSingleProcess(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startControlPlane(t, dataDir)
	_, stop, errc := startAgent(t, ts.URL, "-name", "e2e")

	cells := []string{"table1", "table2", "table4"}
	var sv fleet.SweepView
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4"], "seed": 7, "dir": "d1"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	view := waitSweepDone(t, ts.URL, sv.ID, 60*time.Second)
	if view.Completed != len(cells) || view.Abandoned != 0 {
		t.Fatalf("sweep = %+v", view)
	}

	// Fold the fleet journal last-record-wins and compare each table to
	// a fresh in-process execution under identical options.
	final := map[string]experiments.CellRecord{}
	data, err := os.ReadFile(filepath.Join(dataDir, "sweeps", "d1", "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec experiments.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		final[rec.ID] = rec
	}
	lab := experiments.NewLab(experiments.Quick(7))
	for _, id := range cells {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want, interrupted := experiments.ExecuteCell(lab, e)
		if interrupted || want.Status != experiments.CellOK {
			t.Fatalf("local run of %s: %+v", id, want)
		}
		got, ok := final[id]
		if !ok || got.Status != experiments.CellOK {
			t.Fatalf("fleet record for %s: %+v", id, got)
		}
		gj, _ := json.Marshal(got.Table)
		wj, _ := json.Marshal(want.Table)
		if string(gj) != string(wj) {
			t.Fatalf("table %s diverges between fleet and in-process:\nfleet: %s\nlocal: %s", id, gj, wj)
		}
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit after stop")
	}
}

func TestAgentDeregistersOnStop(t *testing.T) {
	_, ts := startControlPlane(t, t.TempDir())
	agentID, stop, errc := startAgent(t, ts.URL, "-name", "quitter")

	var agents []fleet.AgentStatus
	resp, err := http.Get(ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(b, &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 1 || agents[0].ID != agentID {
		t.Fatalf("agents = %+v, want just %s", agents, agentID)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit")
	}

	resp, err = http.Get(ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	agents = nil
	if err := json.Unmarshal(b, &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 0 {
		t.Fatalf("agent still registered after graceful stop: %+v", agents)
	}
}

// TestAgentsShareSweep runs two agents against one sweep; every cell
// must land exactly once regardless of which agent ran it.
func TestAgentsShareSweep(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startControlPlane(t, dataDir)
	id1, stop1, errc1 := startAgent(t, ts.URL, "-name", "w1")
	id2, stop2, errc2 := startAgent(t, ts.URL, "-name", "w2")

	// Distinct identities: near-simultaneous registrations (neither has
	// an agent ID yet) must not collide in the control plane's
	// idempotency cache — that would fuse both agents into one.
	if id1 == id2 {
		t.Fatalf("both agents registered as %q", id1)
	}

	var sv fleet.SweepView
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4", "table5", "table7"], "seed": 3, "dir": "shared"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	view := waitSweepDone(t, ts.URL, sv.ID, 60*time.Second)
	if view.Completed != 5 || view.Abandoned != 0 {
		t.Fatalf("sweep = %+v", view)
	}
	// Exactly one ok record per cell in the journal.
	data, err := os.ReadFile(filepath.Join(dataDir, "sweeps", "shared", "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	okCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec experiments.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Status == experiments.CellOK {
			okCount[rec.ID]++
		}
	}
	want := map[string]int{"table1": 1, "table2": 1, "table4": 1, "table5": 1, "table7": 1}
	if !reflect.DeepEqual(okCount, want) {
		t.Fatalf("ok records per cell = %v, want %v", okCount, want)
	}

	close(stop1)
	close(stop2)
	for _, errc := range []chan error{errc1, errc2} {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("agent exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("agent did not exit")
		}
	}
}

// TestAgentParallelExactlyOnce runs one agent with -parallel 3 over a
// six-cell sweep: every cell must land exactly once even with three
// leases in flight at a time (slot map, lab pool, and seat accounting
// all exercised under -race).
func TestAgentParallelExactlyOnce(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startControlPlane(t, dataDir)
	_, stop, errc := startAgent(t, ts.URL, "-name", "wide", "-parallel", "3")

	cells := []string{"table1", "table2", "table4", "table5", "table7", "fig5"}
	var sv fleet.SweepView
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4", "table5", "table7", "fig5"], "seed": 11, "dir": "wide"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	view := waitSweepDone(t, ts.URL, sv.ID, 120*time.Second)
	if view.Completed != len(cells) || view.Abandoned != 0 {
		t.Fatalf("sweep = %+v", view)
	}
	assertExactlyOnce(t, filepath.Join(dataDir, "sweeps", "wide", "cells.jsonl"), cells)

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit")
	}
}

// assertExactlyOnce folds a cells journal and requires exactly one OK
// record per expected cell — the distributed exactly-once contract.
func assertExactlyOnce(t *testing.T, journal string, cells []string) {
	t.Helper()
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	okCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec experiments.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Status == experiments.CellOK {
			okCount[rec.ID]++
		}
	}
	want := map[string]int{}
	for _, id := range cells {
		want[id] = 1
	}
	if !reflect.DeepEqual(okCount, want) {
		t.Fatalf("ok records per cell = %v, want %v", okCount, want)
	}
}

// TestAgentRidesOutControlPlaneRestart is the partition-tolerance
// acceptance test: the control plane is SIGKILLed (serve.Kill — no
// graceful bookkeeping) mid-sweep and restarted on the same address
// with the same data directory. The agent must ride the outage on its
// retry policy, re-register with the new incarnation, and finish the
// re-adopted sweep with every cell exactly once.
func TestAgentRidesOutControlPlaneRestart(t *testing.T) {
	dataDir := t.TempDir()
	cfg := serve.Config{
		Workers: 1,
		DataDir: dataDir,
		Fleet: fleet.Config{
			LeaseTTL:   time.Second,
			AgentTTL:   2 * time.Second,
			RetryLimit: 5,
			Backoff:    time.Millisecond,
			BackoffCap: 10 * time.Millisecond,
		},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv1, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := &http.Server{Handler: srv1.Handler()}
	go hs1.Serve(ln)
	base := "http://" + addr

	_, stop, errc := startAgent(t, base, "-name", "survivor", "-parallel", "2")

	cells := []string{"table1", "table2", "table4", "table5", "table7", "fig5", "fig6", "fig7"}
	var sv fleet.SweepView
	code := postJSON(t, base+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4", "table5", "table7", "fig5", "fig6", "fig7"], "seed": 5, "dir": "restart"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}

	// Let at least one cell land, then pull the rug: abrupt kill, no
	// drain, listener gone. The agent sees refused connections.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + sv.ID)
		if err != nil {
			t.Fatal(err)
		}
		var view fleet.SweepView
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &view); err != nil {
			t.Fatalf("sweep view: %v (%s)", err, b)
		}
		if view.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no cell completed before kill: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv1.Kill()
	hs1.Close()

	// Restart on the same address with the same data directory.
	var ln2 net.Listener
	for retry := 0; ; retry++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if retry > 100 {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv2, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("restart serve.New: %v", err)
	}
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(ln2)
	t.Cleanup(func() {
		hs2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv2.Drain(ctx)
	})

	// The agent must re-register with the new incarnation on its own —
	// claim and heartbeat both turn 404 into a re-registration.
	deadline = time.Now().Add(30 * time.Second)
	for {
		var agents []fleet.AgentStatus
		resp, err := http.Get(base + "/v1/agents")
		if err == nil {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(b, &agents) == nil && len(agents) == 1 {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never re-registered after restart: %+v", agents)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The re-adopted sweep runs to completion, every cell exactly once:
	// pre-crash completions survived in the journal, the in-flight cell
	// was fenced and requeued, nothing ran twice.
	view := waitSweepDone(t, base, sv.ID, 120*time.Second)
	if view.Completed != len(cells) || view.Abandoned != 0 {
		t.Fatalf("re-adopted sweep = %+v", view)
	}
	assertExactlyOnce(t, filepath.Join(dataDir, "sweeps", "restart", "cells.jsonl"), cells)

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit")
	}
}
