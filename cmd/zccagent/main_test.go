package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"zccloud/internal/experiments"
	"zccloud/internal/fleet"
	"zccloud/internal/serve"
)

// startControlPlane brings up a real serve.Server over httptest.
func startControlPlane(t *testing.T, dataDir string) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		Workers: 1,
		DataDir: dataDir,
		Fleet: fleet.Config{
			LeaseTTL:   2 * time.Second,
			AgentTTL:   2 * time.Second,
			RetryLimit: 3,
			Backoff:    time.Millisecond,
			BackoffCap: 10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Drain(ctx)
	})
	return srv, ts
}

// startAgent runs the agent body against the control plane and returns
// its ID, stop trigger, and exit channel.
func startAgent(t *testing.T, serverURL string, extra ...string) (string, chan struct{}, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	args := append([]string{"-server", serverURL, "-poll", "10ms", "-quiet"}, extra...)
	go func() { errc <- run(args, io.Discard, ready, stop) }()
	select {
	case id := <-ready:
		return id, stop, errc
	case err := <-errc:
		t.Fatalf("agent exited before registering: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("agent never registered")
	}
	return "", nil, nil
}

func postJSON(t *testing.T, url, body string, into any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if into != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(b, into); err != nil {
			t.Fatalf("unmarshal %s: %v (%s)", url, err, b)
		}
	}
	return resp.StatusCode
}

func waitSweepDone(t *testing.T, base, id string, wait time.Duration) fleet.SweepView {
	t.Helper()
	deadline := time.Now().Add(wait)
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var view fleet.SweepView
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(b, &view); err != nil {
			t.Fatalf("sweep view: %v (%s)", err, b)
		}
		if view.Done {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %+v", view)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAgentRunsSweepMatchesSingleProcess is the acceptance check in
// miniature: a zccagent-executed sweep must produce, cell for cell, the
// same tables as running the experiments in-process with the same
// options.
func TestAgentRunsSweepMatchesSingleProcess(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startControlPlane(t, dataDir)
	_, stop, errc := startAgent(t, ts.URL, "-name", "e2e")

	cells := []string{"table1", "table2", "table4"}
	var sv fleet.SweepView
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4"], "seed": 7, "dir": "d1"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	view := waitSweepDone(t, ts.URL, sv.ID, 60*time.Second)
	if view.Completed != len(cells) || view.Abandoned != 0 {
		t.Fatalf("sweep = %+v", view)
	}

	// Fold the fleet journal last-record-wins and compare each table to
	// a fresh in-process execution under identical options.
	final := map[string]experiments.CellRecord{}
	data, err := os.ReadFile(filepath.Join(dataDir, "sweeps", "d1", "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec experiments.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		final[rec.ID] = rec
	}
	lab := experiments.NewLab(experiments.Quick(7))
	for _, id := range cells {
		e, err := experiments.ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		want, interrupted := experiments.ExecuteCell(lab, e)
		if interrupted || want.Status != experiments.CellOK {
			t.Fatalf("local run of %s: %+v", id, want)
		}
		got, ok := final[id]
		if !ok || got.Status != experiments.CellOK {
			t.Fatalf("fleet record for %s: %+v", id, got)
		}
		gj, _ := json.Marshal(got.Table)
		wj, _ := json.Marshal(want.Table)
		if string(gj) != string(wj) {
			t.Fatalf("table %s diverges between fleet and in-process:\nfleet: %s\nlocal: %s", id, gj, wj)
		}
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit after stop")
	}
}

func TestAgentDeregistersOnStop(t *testing.T) {
	_, ts := startControlPlane(t, t.TempDir())
	agentID, stop, errc := startAgent(t, ts.URL, "-name", "quitter")

	var agents []fleet.AgentStatus
	resp, err := http.Get(ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(b, &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 1 || agents[0].ID != agentID {
		t.Fatalf("agents = %+v, want just %s", agents, agentID)
	}

	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("agent exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("agent did not exit")
	}

	resp, err = http.Get(ts.URL + "/v1/agents")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	agents = nil
	if err := json.Unmarshal(b, &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 0 {
		t.Fatalf("agent still registered after graceful stop: %+v", agents)
	}
}

// TestAgentsShareSweep runs two agents against one sweep; every cell
// must land exactly once regardless of which agent ran it.
func TestAgentsShareSweep(t *testing.T) {
	dataDir := t.TempDir()
	_, ts := startControlPlane(t, dataDir)
	_, stop1, errc1 := startAgent(t, ts.URL, "-name", "w1")
	_, stop2, errc2 := startAgent(t, ts.URL, "-name", "w2")

	var sv fleet.SweepView
	code := postJSON(t, ts.URL+"/v1/sweeps",
		`{"experiments": ["table1", "table2", "table4", "table5", "table7"], "seed": 3, "dir": "shared"}`, &sv)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit = %d", code)
	}
	view := waitSweepDone(t, ts.URL, sv.ID, 60*time.Second)
	if view.Completed != 5 || view.Abandoned != 0 {
		t.Fatalf("sweep = %+v", view)
	}
	// Exactly one ok record per cell in the journal.
	data, err := os.ReadFile(filepath.Join(dataDir, "sweeps", "shared", "cells.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	okCount := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec experiments.CellRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Status == experiments.CellOK {
			okCount[rec.ID]++
		}
	}
	want := map[string]int{"table1": 1, "table2": 1, "table4": 1, "table5": 1, "table7": 1}
	if !reflect.DeepEqual(okCount, want) {
		t.Fatalf("ok records per cell = %v, want %v", okCount, want)
	}

	close(stop1)
	close(stop2)
	for _, errc := range []chan error{errc1, errc2} {
		select {
		case err := <-errc:
			if err != nil {
				t.Fatalf("agent exit: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("agent did not exit")
		}
	}
}
