// Command zccagent is the worker half of distributed experiment
// sweeps: it registers with a zccd control plane, heartbeats, and pulls
// sweep cells to execute until told to stop.
//
//	zccagent -server http://127.0.0.1:8421 -name $(hostname) -parallel 4
//
// Each pulled cell arrives as a lease — a monotonic fencing token plus
// a deadline — and the agent's heartbeats renew every held lease while
// its cells run (-parallel N holds up to N at once). A completed cell
// is reported back under its token; if the control plane reaped this
// agent in the meantime (a long GC pause, a network partition), the
// token is stale, the result is rejected, and the cell has already
// been requeued elsewhere — the agent just drops it and re-registers.
// SIGINT/SIGTERM drains gracefully: every in-flight cell is
// interrupted at its next event boundary and released back to the
// queue front (no retry penalty), the agent deregisters, and exits 0.
//
// Partition tolerance is one policy, not per-call-site heroics: every
// request goes through internal/retryhttp — a per-attempt timeout,
// capped exponential backoff with full jitter, server Retry-After
// hints honored, and one X-Request-ID reused across a logical
// request's attempts so the control plane's idempotency cache replays
// the first execution's answer instead of executing twice. A zccd
// restart therefore looks like a brief partition: requests retry,
// heartbeats eventually see 404, and the agent re-registers forever
// (aborting only on drain) rather than dying.
//
// Every log line carries agent_id — with run_id and cell bound while a
// cell is in flight — so one grep reconstructs a cell's lifecycle
// across both processes.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"zccloud/internal/experiments"
	"zccloud/internal/fleet"
	"zccloud/internal/obs"
	"zccloud/internal/retryhttp"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "zccagent: %v\n", err)
		os.Exit(1)
	}
}

// slot is one held lease: the grant plus the lost flag the heartbeat
// loop flips when the control plane fences its token.
type slot struct {
	grant fleet.Grant
	lost  atomic.Bool
}

// bootSeq distinguishes agent instances sharing one process (tests).
var bootSeq atomic.Int64

// agent is one worker's client state against the control plane.
type agent struct {
	server   string
	name     string
	parallel int
	boot     string // per-instance nonce keeping request IDs globally unique
	rc       *retryhttp.Client
	log      *obs.Logger

	mu      sync.Mutex
	id      string // control-plane identity; changes on re-register
	hbEvery time.Duration
	slots   map[int64]*slot // held leases keyed by fencing token
	rng     *rand.Rand

	reqSeq atomic.Int64

	// draining is set by SIGTERM (agent drain) or a draining reply from
	// the control plane; either way every in-flight cell stops at its
	// next event boundary and is released rather than completed.
	draining atomic.Bool
	// reregister asks the claim loop to re-register before continuing
	// (the control plane forgot us: restart or reap).
	reregister atomic.Bool
}

// run is the testable agent body. ready (optional) receives the agent
// ID once registered; stop (optional) triggers the same path as
// SIGTERM.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("zccagent", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server      = fs.String("server", "http://127.0.0.1:8421", "zccd control-plane base URL")
		name        = fs.String("name", "", "agent name reported at registration (default: hostname)")
		parallel    = fs.Int("parallel", 1, "cells to execute concurrently (leases held at once)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "idle claim-poll interval (jittered)")
		connectWait = fs.Duration("connect-wait", 30*time.Second, "how long to keep retrying the initial registration")
		httpTimeout = fs.Duration("http-timeout", 10*time.Second, "per-attempt HTTP timeout")
		maxRetryAft = fs.Duration("max-retry-after", 2*time.Minute, "cap on an honored server Retry-After hint (power-aware servers emit window-scale waits)")
		logLevel    = fs.String("log-level", "info", "log threshold: debug, info, warn, or error")
		logFormat   = fs.String("log-format", "logfmt", "log line encoding: logfmt or json")
		quiet       = fs.Bool("quiet", false, "suppress operational log lines")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stderr, "zccagent", obs.BuildInfo())
		return nil
	}
	if *name == "" {
		h, err := os.Hostname()
		if err != nil {
			h = "zccagent"
		}
		*name = h
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1 (got %d)", *parallel)
	}

	var logger *obs.Logger
	if !*quiet {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		format, err := obs.ParseLogFormat(*logFormat)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(stderr, lv, format)
	}

	a := &agent{
		server:   *server,
		name:     *name,
		parallel: *parallel,
		log:      logger,
		slots:    make(map[int64]*slot),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	a.boot = fmt.Sprintf("%x.%x.%04x", os.Getpid(), bootSeq.Add(1), a.rng.Uint32()&0xffff)
	a.rc = &retryhttp.Client{
		HTTP:          &http.Client{Timeout: *httpTimeout},
		Sleep:         a.retrySleep,
		Log:           logger,
		MaxRetryAfter: *maxRetryAft,
	}
	if err := a.registerWithRetry(*connectWait); err != nil {
		return err
	}
	if ready != nil {
		ready <- a.agentID()
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case sig := <-sigc:
			a.alog().Info("draining", "signal", sig.String())
		case <-func() <-chan struct{} {
			if stop != nil {
				return stop
			}
			return make(chan struct{})
		}():
			a.alog().Info("draining", "signal", "stop requested")
		}
		a.draining.Store(true)
	}()

	hbDone := make(chan struct{})
	hbStop := make(chan struct{})
	go a.heartbeatLoop(hbStop, hbDone)

	err := a.claimLoop(*poll)

	close(hbStop)
	<-hbDone
	a.deregister()
	a.alog().Info("drained; exiting")
	return err
}

// alog is the agent's identity-bound logger.
func (a *agent) alog() *obs.Logger { return a.log.With("agent_id", a.agentID()) }

func (a *agent) agentID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

// heldTokens snapshots every lease the agent currently holds, for the
// heartbeat body.
func (a *agent) heldTokens() []int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	tokens := make([]int64, 0, len(a.slots))
	for tok := range a.slots {
		tokens = append(tokens, tok)
	}
	return tokens
}

// markLost flags a held lease (or, with token 0, every held lease) so
// its cell stops at the next event boundary and its result is dropped.
func (a *agent) markLost(token int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for tok, sl := range a.slots {
		if token == 0 || tok == token {
			sl.lost.Store(true)
		}
	}
}

// nextReqID derives the per-logical-request correlation ID: it rides
// every retry attempt of the request as both the control plane's log
// key and its idempotency key. The boot nonce keeps IDs unique across
// agents that cannot be told apart by agent ID alone — several
// processes registering at once (none has an ID yet), or stale IDs
// reissued by a restarted control plane; without it, one agent's
// registration could be answered from another's idempotency-cache
// entry, fusing their identities.
func (a *agent) nextReqID() string {
	id := a.agentID()
	if id == "" {
		id = "unregistered"
	}
	return fmt.Sprintf("%s-%s-r%06d", id, a.boot, a.reqSeq.Add(1))
}

// retrySleep is the retryhttp wait hook: jitter-free (the policy
// already jitters), waking early and aborting when the agent drains so
// a retry loop never outlives a SIGTERM.
func (a *agent) retrySleep(d time.Duration) bool {
	const step = 50 * time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if a.draining.Load() {
			return false
		}
		time.Sleep(step)
	}
	return !a.draining.Load()
}

// doJSON issues one logical JSON request under the unified retry
// policy. Returns the definitive HTTP status (0 on exhausted transport
// errors or drain-abort).
func (a *agent) doJSON(method, path string, in, out any) (int, error) {
	return a.rc.DoJSON(method, a.server+path, a.nextReqID(), in, out)
}

// register introduces the agent; the reply fixes its identity and
// cadence.
func (a *agent) register() error {
	var view fleet.AgentView
	code, err := a.doJSON("POST", "/v1/agents", map[string]string{"name": a.name}, &view)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("register: HTTP %d", code)
	}
	hb := time.Duration(view.HeartbeatMS) * time.Millisecond
	if hb <= 0 {
		hb = 2 * time.Second
	}
	a.mu.Lock()
	a.id = view.ID
	a.hbEvery = hb
	a.mu.Unlock()
	a.alog().Info("registered", "agent", a.name, "server", a.server,
		"heartbeat", hb, "lease", time.Duration(view.LeaseMS)*time.Millisecond)
	return nil
}

// registerWithRetry keeps trying until the control plane answers or the
// wait budget runs out — agents routinely start before the daemon. A
// zero wait means forever: a running agent severed from a restarting
// control plane re-attaches whenever the daemon comes back, however
// long that takes. Both forms abort on drain.
func (a *agent) registerWithRetry(wait time.Duration) error {
	var deadline time.Time
	if wait > 0 {
		deadline = time.Now().Add(wait)
	}
	delay := 200 * time.Millisecond
	for {
		err := a.register()
		if err == nil {
			return nil
		}
		if a.draining.Load() {
			return nil
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("registering with %s: %w", a.server, err)
		}
		a.log.Warn("register failed; retrying", "err", err.Error(), "backoff", delay)
		a.sleep(delay)
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
}

// heartbeatLoop renews every held lease on the cadence the control
// plane asked for. A lost-token reply interrupts that cell; an
// unknown-agent reply (reap, or a control-plane restart that fenced
// every pre-crash token) interrupts all of them and schedules a
// re-registration; a draining reply stops new claims and releases the
// in-flight cells.
func (a *agent) heartbeatLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	a.mu.Lock()
	every := a.hbEvery
	a.mu.Unlock()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		id := a.agentID()
		var rep fleet.HeartbeatReply
		code, err := a.doJSON("POST", "/v1/agents/"+id+"/heartbeat",
			map[string][]int64{"tokens": a.heldTokens()}, &rep)
		switch {
		case err != nil:
			a.alog().Warn("heartbeat failed", "err", err.Error())
		case code == http.StatusNotFound:
			// Reaped, or the daemon restarted and fenced every pre-crash
			// token: our leases are gone. Drop the cells, get a new
			// identity.
			a.alog().Warn("unknown to control plane; dropping leases and re-registering")
			a.markLost(0)
			a.reregister.Store(true)
		case code != http.StatusOK:
			a.alog().Warn("heartbeat rejected", "status", code)
		default:
			for _, lost := range rep.Lost {
				if lost != 0 {
					a.alog().Warn("lease lost; stopping cell", "token", lost)
					a.markLost(lost)
				}
			}
			if rep.Draining {
				a.draining.Store(true)
			}
		}
	}
}

// labPool hands out Labs for the sweep currently being executed. Cells
// of one sweep share derived artifacts (scaled traces, the SP
// analysis), but a Lab is single-threaded — so the pool keeps one free
// list per fingerprint and each in-flight cell checks a Lab out
// exclusively, building a fresh one only when all are busy. Only the
// latest fingerprint's Labs are kept: sweeps run mostly one at a time.
type labPool struct {
	mu   sync.Mutex
	fp   string
	free []*experiments.Lab
}

func (p *labPool) get(fp string, opt experiments.Options) *experiments.Lab {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fp != fp {
		p.fp = fp
		p.free = nil
	}
	if n := len(p.free); n > 0 {
		lab := p.free[n-1]
		p.free = p.free[:n-1]
		return lab
	}
	return experiments.NewLab(opt)
}

func (p *labPool) put(fp string, lab *experiments.Lab) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fp == fp {
		p.free = append(p.free, lab)
	}
}

// claimLoop pulls cells and dispatches them to up to parallel
// concurrent executors until draining. Idle polls are jittered so a
// fleet of agents does not beat on the control plane in phase; the
// loop blocks (drain-aware) while all executor seats are busy.
func (a *agent) claimLoop(poll time.Duration) error {
	labs := &labPool{}
	seats := make(chan struct{}, a.parallel)
	var wg sync.WaitGroup
	defer wg.Wait() // every in-flight cell reports before deregister
	for !a.draining.Load() {
		if a.reregister.CompareAndSwap(true, false) {
			// Retry forever: an agent that outlives a control-plane
			// restart must re-attach, not die. Only drain stops it.
			if err := a.registerWithRetry(0); err != nil {
				return err
			}
			continue
		}
		if !a.acquireSeat(seats) {
			break
		}
		var grant fleet.Grant
		code, err := a.doJSON("POST", "/v1/cells/claim", map[string]string{"agent": a.agentID()}, &grant)
		switch {
		case err != nil:
			<-seats
			a.alog().Warn("claim failed", "err", err.Error())
			a.sleep(4 * poll)
			continue
		case code == http.StatusNoContent:
			<-seats
			a.sleep(poll)
			continue
		case code == http.StatusNotFound:
			<-seats
			a.reregister.Store(true)
			continue
		case code != http.StatusOK:
			// Retryable statuses (429/503 with their Retry-After hints)
			// were already waited out inside the retry policy; whatever
			// surfaces here is just "not now".
			<-seats
			a.alog().Warn("claim rejected", "status", code)
			a.sleep(4 * poll)
			continue
		}
		lab := labs.get(grant.Fingerprint, grant.Options)
		wg.Add(1)
		go func(lab *experiments.Lab, grant fleet.Grant) {
			defer wg.Done()
			defer func() { <-seats }()
			a.runCell(lab, grant)
			labs.put(grant.Fingerprint, lab)
		}(lab, grant)
	}
	return nil
}

// acquireSeat blocks until an executor seat frees up, polling the
// drain flag so a stop request is never stuck behind a slow cell.
func (a *agent) acquireSeat(seats chan struct{}) bool {
	for {
		select {
		case seats <- struct{}{}:
			return true
		case <-time.After(50 * time.Millisecond):
			if a.draining.Load() {
				return false
			}
		}
	}
}

// runCell executes one granted cell and reports its outcome: complete
// on a terminal record, release on a voluntary stop, drop on a lost
// lease.
func (a *agent) runCell(lab *experiments.Lab, grant fleet.Grant) {
	e, err := experiments.ByID(grant.Cell)
	if err != nil {
		// A cell we cannot run (version skew): report it as an error
		// attempt so the control plane retries elsewhere or abandons.
		a.complete(grant, experiments.CellRecord{
			ID: grant.Cell, Status: experiments.CellError,
			Error: fmt.Sprintf("agent %s: %v", a.agentID(), err),
		})
		return
	}
	sl := &slot{grant: grant}
	a.mu.Lock()
	a.slots[grant.Token] = sl
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		delete(a.slots, grant.Token)
		a.mu.Unlock()
	}()
	clog := a.alog().With("run_id", grant.Sweep, "cell", grant.Cell, "token", grant.Token)
	clog.Info("cell start", "attempt_deadline_ms", grant.DeadlineMS)
	lab.SetObs(obs.Options{
		RunID: grant.Sweep,
		Log:   a.log,
		Interrupt: func() bool {
			return a.draining.Load() || sl.lost.Load()
		},
	})
	rec, interrupted := experiments.ExecuteCell(lab, e)
	switch {
	case interrupted && sl.lost.Load():
		clog.Warn("cell dropped: lease lost mid-run", "elapsed_ms", rec.ElapsedMS)
	case interrupted:
		clog.Info("cell released: draining", "elapsed_ms", rec.ElapsedMS)
		a.release(grant)
	default:
		clog.Info("cell finished", "status", rec.Status, "elapsed_ms", rec.ElapsedMS)
		a.complete(grant, rec)
	}
}

// complete reports a terminal record; the retry policy absorbs
// transient failures and replays through the server's idempotency
// cache. A 409 means the fencing token went stale — the cell was
// requeued — and the result is discarded by design.
func (a *agent) complete(grant fleet.Grant, rec experiments.CellRecord) {
	body := struct {
		Agent  string                 `json:"agent"`
		Sweep  string                 `json:"sweep"`
		Cell   string                 `json:"cell"`
		Token  int64                  `json:"token"`
		Record experiments.CellRecord `json:"record"`
	}{a.agentID(), grant.Sweep, grant.Cell, grant.Token, rec}
	clog := a.alog().With("run_id", grant.Sweep, "cell", grant.Cell, "token", grant.Token)
	code, err := a.doJSON("POST", "/v1/cells/complete", body, nil)
	switch {
	case err == nil && code == http.StatusOK:
	case code == http.StatusConflict:
		clog.Warn("result fenced off (cell requeued elsewhere); discarding")
	default:
		clog.Error("completion lost after retries", "status", code, "err", errString(err))
	}
}

// release parks the in-flight cell back on the queue front (agent
// drain). Best-effort: a stale token means it was already requeued.
func (a *agent) release(grant fleet.Grant) {
	body := struct {
		Agent string `json:"agent"`
		Sweep string `json:"sweep"`
		Cell  string `json:"cell"`
		Token int64  `json:"token"`
	}{a.agentID(), grant.Sweep, grant.Cell, grant.Token}
	code, err := a.doJSON("POST", "/v1/cells/release", body, nil)
	if err != nil || code != http.StatusOK {
		a.alog().Warn("release failed", "run_id", grant.Sweep, "cell", grant.Cell,
			"status", code, "err", errString(err))
	}
}

// deregister tells the control plane we are leaving; best-effort.
func (a *agent) deregister() {
	id := a.agentID()
	if id == "" {
		return
	}
	if _, err := a.doJSON("DELETE", "/v1/agents/"+id, nil, nil); err != nil {
		a.alog().Warn("deregister failed", "err", err.Error())
	}
}

// sleep waits with ±25% jitter, waking early when draining.
func (a *agent) sleep(d time.Duration) {
	a.mu.Lock()
	f := a.rng.Float64()
	a.mu.Unlock()
	d = time.Duration(float64(d) * (0.75 + 0.5*f))
	const step = 50 * time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if a.draining.Load() {
			return
		}
		time.Sleep(step)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
