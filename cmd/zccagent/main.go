// Command zccagent is the worker half of distributed experiment
// sweeps: it registers with a zccd control plane, heartbeats, and pulls
// sweep cells to execute until told to stop.
//
//	zccagent -server http://127.0.0.1:8421 -name $(hostname)
//
// Each pulled cell arrives as a lease — a monotonic fencing token plus
// a deadline — and the agent's heartbeats renew it while the cell runs.
// A completed cell is reported back under its token; if the control
// plane reaped this agent in the meantime (a long GC pause, a network
// partition), the token is stale, the result is rejected, and the cell
// has already been requeued elsewhere — the agent just drops it and
// re-registers. SIGINT/SIGTERM drains gracefully: the in-flight cell is
// interrupted at its next event boundary and released back to the
// queue front (no retry penalty), the agent deregisters, and exits 0.
//
// Every HTTP call carries an agent-derived X-Request-ID the control
// plane echoes into its own logs, and every log line carries agent_id —
// with run_id and cell bound while a cell is in flight — so one grep
// reconstructs a cell's lifecycle across both processes.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"zccloud/internal/experiments"
	"zccloud/internal/fleet"
	"zccloud/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "zccagent: %v\n", err)
		os.Exit(1)
	}
}

// agent is one worker's client state against the control plane.
type agent struct {
	server string
	name   string
	hc     *http.Client
	log    *obs.Logger
	rng    *rand.Rand

	id     string // control-plane identity; changes on re-register
	reqSeq atomic.Int64

	hbEvery time.Duration

	// token is the fencing token of the in-flight cell's lease (0 =
	// idle); the heartbeat loop renews it and flags it lost.
	token     atomic.Int64
	leaseLost atomic.Bool
	// draining is set by SIGTERM (agent drain) or a draining reply from
	// the control plane; either way the in-flight cell stops at its
	// next event boundary and is released rather than completed.
	draining atomic.Bool
	// reregister asks the claim loop to re-register before continuing
	// (the control plane forgot us: restart or reap).
	reregister atomic.Bool
}

// run is the testable agent body. ready (optional) receives the agent
// ID once registered; stop (optional) triggers the same path as
// SIGTERM.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("zccagent", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		server      = fs.String("server", "http://127.0.0.1:8421", "zccd control-plane base URL")
		name        = fs.String("name", "", "agent name reported at registration (default: hostname)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "idle claim-poll interval (jittered)")
		connectWait = fs.Duration("connect-wait", 30*time.Second, "how long to keep retrying the initial registration")
		logLevel    = fs.String("log-level", "info", "log threshold: debug, info, warn, or error")
		logFormat   = fs.String("log-format", "logfmt", "log line encoding: logfmt or json")
		quiet       = fs.Bool("quiet", false, "suppress operational log lines")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stderr, "zccagent", obs.BuildInfo())
		return nil
	}
	if *name == "" {
		h, err := os.Hostname()
		if err != nil {
			h = "zccagent"
		}
		*name = h
	}

	var logger *obs.Logger
	if !*quiet {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		format, err := obs.ParseLogFormat(*logFormat)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(stderr, lv, format)
	}

	a := &agent{
		server: *server,
		name:   *name,
		hc:     &http.Client{Timeout: 30 * time.Second},
		log:    logger,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if err := a.registerWithRetry(*connectWait); err != nil {
		return err
	}
	if ready != nil {
		ready <- a.id
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	go func() {
		select {
		case sig := <-sigc:
			a.alog().Info("draining", "signal", sig.String())
		case <-func() <-chan struct{} {
			if stop != nil {
				return stop
			}
			return make(chan struct{})
		}():
			a.alog().Info("draining", "signal", "stop requested")
		}
		a.draining.Store(true)
	}()

	hbDone := make(chan struct{})
	hbStop := make(chan struct{})
	go a.heartbeatLoop(hbStop, hbDone)

	err := a.claimLoop(*poll)

	close(hbStop)
	<-hbDone
	a.deregister()
	a.alog().Info("drained; exiting")
	return err
}

// alog is the agent's identity-bound logger.
func (a *agent) alog() *obs.Logger { return a.log.With("agent_id", a.id) }

// nextReqID derives the per-request correlation ID the control plane
// echoes into its logs.
func (a *agent) nextReqID() string {
	id := a.id
	if id == "" {
		id = "unregistered"
	}
	return fmt.Sprintf("%s-r%06d", id, a.reqSeq.Add(1))
}

// do issues one JSON request. A nil in sends an empty object; a nil out
// discards the body. Returns the HTTP status (0 on transport error).
func (a *agent) do(method, path string, in, out any) (int, error) {
	body := []byte("{}")
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return 0, err
		}
	}
	req, err := http.NewRequest(method, a.server+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	reqID := a.nextReqID()
	req.Header.Set("X-Request-ID", reqID)
	resp, err := a.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	a.log.Debug("request", "req_id", reqID, "method", method, "path", path, "status", resp.StatusCode)
	if resp.StatusCode >= 200 && resp.StatusCode < 300 && out != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s %s response: %w", method, path, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	}
	return resp.StatusCode, nil
}

// register introduces the agent; the reply fixes its identity and
// cadence.
func (a *agent) register() error {
	var view fleet.AgentView
	code, err := a.do("POST", "/v1/agents", map[string]string{"name": a.name}, &view)
	if err != nil {
		return err
	}
	if code != http.StatusOK {
		return fmt.Errorf("register: HTTP %d", code)
	}
	a.id = view.ID
	a.hbEvery = time.Duration(view.HeartbeatMS) * time.Millisecond
	if a.hbEvery <= 0 {
		a.hbEvery = 2 * time.Second
	}
	a.alog().Info("registered", "agent", a.name, "server", a.server,
		"heartbeat", a.hbEvery, "lease", time.Duration(view.LeaseMS)*time.Millisecond)
	return nil
}

// registerWithRetry keeps trying until the control plane answers or the
// wait budget runs out — agents routinely start before the daemon.
func (a *agent) registerWithRetry(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	delay := 200 * time.Millisecond
	for {
		err := a.register()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) || a.draining.Load() {
			return fmt.Errorf("registering with %s: %w", a.server, err)
		}
		a.log.Warn("register failed; retrying", "err", err.Error(), "backoff", delay)
		time.Sleep(delay)
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

// heartbeatLoop renews the in-flight lease (if any) on the cadence the
// control plane asked for. A lost-token reply interrupts the cell; an
// unknown-agent reply schedules a re-registration; a draining reply
// stops new claims and releases the in-flight cell.
func (a *agent) heartbeatLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(a.hbEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		var tokens []int64
		if tok := a.token.Load(); tok != 0 {
			tokens = []int64{tok}
		}
		var rep fleet.HeartbeatReply
		code, err := a.do("POST", "/v1/agents/"+a.id+"/heartbeat",
			map[string][]int64{"tokens": tokens}, &rep)
		switch {
		case err != nil:
			a.alog().Warn("heartbeat failed", "err", err.Error())
		case code == http.StatusNotFound:
			// Reaped (or the daemon restarted): our leases are gone and
			// our tokens fenced off. Drop the cell, get a new identity.
			a.alog().Warn("reaped by control plane; re-registering")
			if a.token.Load() != 0 {
				a.leaseLost.Store(true)
			}
			a.reregister.Store(true)
		case code != http.StatusOK:
			a.alog().Warn("heartbeat rejected", "status", code)
		default:
			for _, lost := range rep.Lost {
				if lost == a.token.Load() && lost != 0 {
					a.alog().Warn("lease lost; stopping cell", "token", lost)
					a.leaseLost.Store(true)
				}
			}
			if rep.Draining {
				a.draining.Store(true)
			}
		}
	}
}

// claimLoop pulls and executes cells until draining. One cell runs at a
// time; idle polls are jittered so a fleet of agents does not beat on
// the control plane in phase.
func (a *agent) claimLoop(poll time.Duration) error {
	// labs caches the Lab per sweep fingerprint: cells of one sweep
	// share derived artifacts (scaled traces, the SP analysis) exactly
	// like the single-process runner's shared Lab. Only the latest
	// fingerprint is kept — sweeps run mostly one at a time.
	var (
		labFP string
		lab   *experiments.Lab
	)
	for !a.draining.Load() {
		if a.reregister.CompareAndSwap(true, false) {
			if err := a.registerWithRetry(30 * time.Second); err != nil {
				return err
			}
		}
		var grant fleet.Grant
		code, err := a.do("POST", "/v1/cells/claim", map[string]string{"agent": a.id}, &grant)
		switch {
		case err != nil:
			a.alog().Warn("claim failed", "err", err.Error())
			a.sleep(4 * poll)
			continue
		case code == http.StatusNoContent:
			a.sleep(poll)
			continue
		case code == http.StatusNotFound:
			a.reregister.Store(true)
			continue
		case code == http.StatusServiceUnavailable:
			// Control plane draining: release nothing (we hold no
			// lease), keep a slow poll so we pick work back up if it
			// returns.
			a.sleep(8 * poll)
			continue
		case code != http.StatusOK:
			a.alog().Warn("claim rejected", "status", code)
			a.sleep(4 * poll)
			continue
		}
		if lab == nil || labFP != grant.Fingerprint {
			lab = experiments.NewLab(grant.Options)
			labFP = grant.Fingerprint
		}
		a.runCell(lab, grant)
	}
	return nil
}

// runCell executes one granted cell and reports its outcome: complete
// on a terminal record, release on a voluntary stop, drop on a lost
// lease.
func (a *agent) runCell(lab *experiments.Lab, grant fleet.Grant) {
	e, err := experiments.ByID(grant.Cell)
	if err != nil {
		// A cell we cannot run (version skew): report it as an error
		// attempt so the control plane retries elsewhere or abandons.
		a.complete(grant, experiments.CellRecord{
			ID: grant.Cell, Status: experiments.CellError,
			Error: fmt.Sprintf("agent %s: %v", a.id, err),
		})
		return
	}
	clog := a.alog().With("run_id", grant.Sweep, "cell", grant.Cell, "token", grant.Token)
	clog.Info("cell start", "attempt_deadline_ms", grant.DeadlineMS)
	a.leaseLost.Store(false)
	a.token.Store(grant.Token)
	lab.SetObs(obs.Options{
		RunID: grant.Sweep,
		Log:   a.log,
		Interrupt: func() bool {
			return a.draining.Load() || a.leaseLost.Load()
		},
	})
	rec, interrupted := experiments.ExecuteCell(lab, e)
	a.token.Store(0)
	switch {
	case interrupted && a.leaseLost.Load():
		clog.Warn("cell dropped: lease lost mid-run", "elapsed_ms", rec.ElapsedMS)
	case interrupted:
		clog.Info("cell released: draining", "elapsed_ms", rec.ElapsedMS)
		a.release(grant)
	default:
		clog.Info("cell finished", "status", rec.Status, "elapsed_ms", rec.ElapsedMS)
		a.complete(grant, rec)
	}
}

// complete reports a terminal record, retrying transient failures; a
// 409 means the fencing token went stale — the cell was requeued — and
// the result is discarded by design.
func (a *agent) complete(grant fleet.Grant, rec experiments.CellRecord) {
	body := struct {
		Agent  string                 `json:"agent"`
		Sweep  string                 `json:"sweep"`
		Cell   string                 `json:"cell"`
		Token  int64                  `json:"token"`
		Record experiments.CellRecord `json:"record"`
	}{a.id, grant.Sweep, grant.Cell, grant.Token, rec}
	clog := a.alog().With("run_id", grant.Sweep, "cell", grant.Cell, "token", grant.Token)
	for attempt := 1; ; attempt++ {
		code, err := a.do("POST", "/v1/cells/complete", body, nil)
		switch {
		case err == nil && code == http.StatusOK:
			return
		case code == http.StatusConflict:
			clog.Warn("result fenced off (cell requeued elsewhere); discarding")
			return
		case attempt >= 3:
			clog.Error("completion lost after retries", "status", code, "err", errString(err))
			return
		default:
			clog.Warn("completion failed; retrying", "status", code, "err", errString(err))
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
	}
}

// release parks the in-flight cell back on the queue front (agent
// drain). Best-effort: a stale token means it was already requeued.
func (a *agent) release(grant fleet.Grant) {
	body := struct {
		Agent string `json:"agent"`
		Sweep string `json:"sweep"`
		Cell  string `json:"cell"`
		Token int64  `json:"token"`
	}{a.id, grant.Sweep, grant.Cell, grant.Token}
	code, err := a.do("POST", "/v1/cells/release", body, nil)
	if err != nil || code != http.StatusOK {
		a.alog().Warn("release failed", "run_id", grant.Sweep, "cell", grant.Cell,
			"status", code, "err", errString(err))
	}
}

// deregister tells the control plane we are leaving; best-effort.
func (a *agent) deregister() {
	if a.id == "" {
		return
	}
	if _, err := a.do("DELETE", "/v1/agents/"+a.id, nil, nil); err != nil {
		a.alog().Warn("deregister failed", "err", err.Error())
	}
}

// sleep waits with ±25% jitter, waking early when draining.
func (a *agent) sleep(d time.Duration) {
	d = time.Duration(float64(d) * (0.75 + 0.5*a.rng.Float64()))
	const step = 50 * time.Millisecond
	for waited := time.Duration(0); waited < d; waited += step {
		if a.draining.Load() {
			return
		}
		time.Sleep(step)
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
