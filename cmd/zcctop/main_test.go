package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"zccloud"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{
			"build": "test",
			"uptime_sec": 61.5,
			"serve": {
				"queued": 3, "running": 2, "workers": 2,
				"submitted": 40, "completed": 37, "failed": 1, "shed": 10,
				"latency": {
					"exec": {"count": 37, "p50": 2.1, "p95": 8.8, "p99": 12},
					"queue_wait": {"count": 40, "p50": 0.12, "p95": 1.9, "p99": 3.2}
				},
				"outcomes": {"ok": 36, "canceled": 1}
			},
			"sim": {
				"clock_days": 3.5, "queue_len": 7, "running_jobs": 4,
				"completed_jobs": 90, "total_jobs": 120,
				"events_dispatched": 1000, "events_pending": 5,
				"events_per_sec": 512000,
				"partitions": [{"name": "mira", "nodes": 49152, "busy": 40000, "utilization": 0.81}]
			}
		}`))
	})
	mux.HandleFunc("GET /v1/timeseries", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{
			"interval_ms": 1000, "capacity": 600,
			"times": [1000, 2000, 3000],
			"series": {"queue_len": [1, 5, 3], "events_per_sec": [0, 250000, 512000]}
		}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestOnceRendersFrame(t *testing.T) {
	srv := testServer(t)
	var out, errOut strings.Builder
	if err := run([]string{"-once", "-url", srv.URL}, &out, &errOut); err != nil {
		t.Fatalf("run -once: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"build test",
		"up 1m1s",
		"queue   3 queued   2/2 workers busy",
		"submitted 40",
		"shed 10 (20.0%)",
		"queue_wait",
		"exec",
		"2.100", // exec p50
		"ok=36",
		"mira",
		"81.0%",
		"512000 events/sec",
		"queue_len",
		"events_per_sec",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("frame missing %q\nframe:\n%s", want, got)
		}
	}
	// Latency rows follow the lifecycle order even though the JSON map
	// iterates randomly.
	if qi, ei := strings.Index(got, "queue_wait"), strings.Index(got, "  exec "); qi > ei {
		t.Errorf("queue_wait row (%d) should precede exec row (%d)", qi, ei)
	}
	// Sparklines drawn from the series values.
	for _, r := range got {
		if r == '▁' || r == '█' {
			return
		}
	}
	t.Errorf("no sparkline glyphs in frame:\n%s", got)
}

func TestOnceFailsWhenUnreachable(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-once", "-url", "http://127.0.0.1:1"}, &out, &errOut); err == nil {
		t.Fatal("run -once against a dead endpoint should fail")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 40); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	if got := sparkline([]float64{5, 5, 5}, 40); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q, want lowest glyphs", got)
	}
	if got := sparkline(nil, 40); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	// Window truncation keeps the trailing values.
	if got := sparkline([]float64{9, 9, 0, 8}, 2); got != "▁█" {
		t.Errorf("truncated sparkline = %q", got)
	}
}

func TestUtilBar(t *testing.T) {
	if got := utilBar(0.5, 4); got != "[##--]" {
		t.Errorf("utilBar(0.5) = %q", got)
	}
	if got := utilBar(2, 4); got != "[####]" {
		t.Errorf("utilBar clamps high: %q", got)
	}
	if got := utilBar(-1, 4); got != "[----]" {
		t.Errorf("utilBar clamps low: %q", got)
	}
}

func TestRenderFrameWithoutSeries(t *testing.T) {
	f := frame{url: "http://x", status: zccloud.StatusSnapshot{Build: "b"}}
	got := renderFrame(f)
	if !strings.Contains(got, "build b") {
		t.Errorf("minimal frame = %q", got)
	}
}
