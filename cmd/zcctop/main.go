// Command zcctop is a live terminal dashboard for a running zccd (or
// any zccsim/zccexp -http introspection endpoint). It polls /status and
// /v1/timeseries and renders queue depth, worker occupancy, run
// outcomes, lifecycle latency percentiles, per-partition utilization,
// and a sparkline per telemetry series.
//
//	zcctop -url http://127.0.0.1:8421              # refresh every 2s
//	zcctop -url http://127.0.0.1:8421 -interval 1s
//	zcctop -once                                   # one frame, then exit
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zcctop: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://127.0.0.1:8421", "base URL of the daemon's HTTP API")
		interval = fs.Duration("interval", 2*time.Second, "refresh period")
		once     = fs.Bool("once", false, "render a single frame and exit (no screen clearing)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	c := &client{base: strings.TrimRight(*url, "/"), hc: &http.Client{Timeout: 10 * time.Second}}
	if *once {
		f, err := c.fetch()
		if err != nil {
			return err
		}
		io.WriteString(stdout, renderFrame(f))
		return nil
	}
	for {
		f, err := c.fetch()
		if err != nil {
			// The daemon may be restarting or draining; keep polling.
			fmt.Fprintf(stdout, "\033[H\033[2Jzcctop: %v (retrying every %v)\n", err, *interval)
		} else {
			io.WriteString(stdout, "\033[H\033[2J"+renderFrame(f))
		}
		time.Sleep(*interval)
	}
}

// frame is one polled snapshot pair.
type frame struct {
	url    string
	status zccloud.StatusSnapshot
	series zccloud.TimeSeriesSnapshot
}

type client struct {
	base string
	hc   *http.Client
}

func (c *client) fetch() (frame, error) {
	f := frame{url: c.base}
	if err := c.getJSON("/status", &f.status); err != nil {
		return f, err
	}
	// /v1/timeseries is optional (older daemons); a frame without
	// sparklines is still a frame.
	c.getJSON("/v1/timeseries", &f.series)
	return f, nil
}

func (c *client) getJSON(path string, into any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// sparkGlyphs are the eight block heights a sparkline is drawn with.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// sparkline renders up to width trailing values of vs, scaled to the
// window's own min/max (a flat series renders at the lowest height).
func sparkline(vs []float64, width int) string {
	if len(vs) > width {
		vs = vs[len(vs)-width:]
	}
	if len(vs) == 0 {
		return ""
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range vs {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkGlyphs)-1))
		}
		b.WriteRune(sparkGlyphs[i])
	}
	return b.String()
}

// lifecycleOrder fixes the latency table's row order; stages the daemon
// doesn't report are skipped, unknown extras append alphabetically.
var lifecycleOrder = []string{"admission_wait", "queue_wait", "exec", "park"}

func renderFrame(f frame) string {
	var b strings.Builder
	st := f.status

	fmt.Fprintf(&b, "zcctop — %s   build %s   up %s", f.url, st.Build, fmtDur(st.UptimeSec))
	if st.Phase != "" {
		fmt.Fprintf(&b, "   phase %s", st.Phase)
	}
	b.WriteByte('\n')

	if sv := st.Serve; sv != nil {
		drain := ""
		if sv.Draining {
			drain = "   DRAINING"
		}
		fmt.Fprintf(&b, "queue   %d queued   %d/%d workers busy%s\n", sv.Queued, sv.Running, sv.Workers, drain)
		shedRate := 0.0
		if sv.Submitted+sv.Shed > 0 {
			shedRate = float64(sv.Shed) / float64(sv.Submitted+sv.Shed) * 100
		}
		fmt.Fprintf(&b, "runs    submitted %d   completed %d   failed %d   shed %d (%.1f%%)\n",
			sv.Submitted, sv.Completed, sv.Failed, sv.Shed, shedRate)
		if len(sv.Outcomes) > 0 {
			fmt.Fprintf(&b, "outcome %s\n", joinCounts(sv.Outcomes))
		}
		if p := sv.Power; p != nil {
			state := "CLOSED"
			if p.WindowOpen {
				state = "OPEN"
				if p.Frac > 0 && p.Frac < 1 {
					state = fmt.Sprintf("OPEN %.0f%%", p.Frac*100)
				}
			}
			if p.Exhausted {
				state = "EXHAUSTED"
			}
			fmt.Fprintf(&b, "power   %s   limit %d/%d   policy %s   next change %s\n",
				state, p.WorkerLimit, sv.Workers, p.Policy, fmtDur(p.NextChangeSec))
			fmt.Fprintf(&b, "        admitted %d   shed %d   parked %d (now %d)   resubmitted %d   preempted %d\n",
				p.Admitted, p.Shed, p.ParkedTotal, p.Parked, p.Resubmitted, p.Preempted)
			if len(p.Reasons) > 0 {
				fmt.Fprintf(&b, "        shed by %s\n", joinCounts(p.Reasons))
			}
		}
		if len(sv.Latency) > 0 {
			fmt.Fprintf(&b, "%-24s %8s %9s %9s %9s\n", "latency", "count", "p50(s)", "p95(s)", "p99(s)")
			for _, stage := range latencyRows(sv.Latency) {
				l := sv.Latency[stage]
				fmt.Fprintf(&b, "  %-22s %8d %9.3f %9.3f %9.3f\n", stage, l.Count, l.P50, l.P95, l.P99)
			}
		}
	}

	if sim := st.Sim; sim != nil {
		fmt.Fprintf(&b, "sim     day %.2f   queue %d   running %d   done %d/%d   %.0f events/sec\n",
			sim.ClockDays, sim.QueueLen, sim.RunningJobs, sim.CompletedJobs, sim.TotalJobs, sim.EventsPerSec)
		for _, p := range sim.Partitions {
			fmt.Fprintf(&b, "  %-12s %4d/%-4d busy  %s %5.1f%%\n",
				p.Name, p.Busy, p.Nodes, utilBar(p.Utilization, 20), p.Utilization*100)
		}
	}
	if sw := st.Sweep; sw != nil {
		fmt.Fprintf(&b, "sweep   %d/%d cells done\n", sw.Done, sw.Total)
	}

	if len(f.series.Series) > 0 {
		b.WriteByte('\n')
		names := make([]string, 0, len(f.series.Series))
		for name := range f.series.Series {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			vs := f.series.Series[name]
			last := 0.0
			if len(vs) > 0 {
				last = vs[len(vs)-1]
			}
			fmt.Fprintf(&b, "%-24s %s %g\n", name, sparkline(vs, 40), last)
		}
	}
	return b.String()
}

// latencyRows orders the latency table: known lifecycle stages first,
// then anything else alphabetically.
func latencyRows(m map[string]zccloud.LatencyStat) []string {
	var rows []string
	seen := map[string]bool{}
	for _, stage := range lifecycleOrder {
		if _, ok := m[stage]; ok {
			rows = append(rows, stage)
			seen[stage] = true
		}
	}
	var extra []string
	for stage := range m {
		if !seen[stage] {
			extra = append(extra, stage)
		}
	}
	sort.Strings(extra)
	return append(rows, extra...)
}

func joinCounts(m map[string]int64) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, m[k])
	}
	return strings.Join(parts, "   ")
}

func utilBar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	filled := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", filled) + strings.Repeat("-", width-filled) + "]"
}

func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Truncate(time.Second).String()
}
