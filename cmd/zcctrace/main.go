// Command zcctrace post-processes simulation event traces written by
// zccsim/zccexp's -trace flag — JSONL or binary columnar .zct, plain or
// gzipped. It turns a trace — the complete record of the scheduler's
// decisions — into the time-resolved views the paper plots, and can
// pinpoint where two supposedly-identical traces diverge.
//
// Usage:
//
//	zcctrace summary  t.zct              # whole-trace digest
//	zcctrace summary  -j 8 big.zct       # fan .zct blocks across 8 cores
//	zcctrace hist     t.jsonl            # event-kind histogram
//	zcctrace series   -step 1h t.zct     # queue/utilization time series (CSV)
//	zcctrace series   -format markdown t.jsonl.gz
//	zcctrace waits    t.jsonl            # wait time by size bin and on-time class
//	zcctrace timeline -job 17 t.jsonl    # one job's lifecycle
//	zcctrace diff     a.zct b.jsonl.gz   # first divergent event (exit 1 if any)
//	zcctrace export   -o t.jsonl t.zct   # convert to JSONL, byte-identical
//	                                     # to a direct JSONL trace of the run
//
// All subcommands detect the input format by content, never the file
// name, so gzipped and binary traces are read transparently; "-" means
// stdin. The -j flag on summary, hist, and series decodes .zct blocks
// in parallel with output identical to -j 1 (other formats fall back to
// the sequential scan).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zcctrace: %v\n", err)
		os.Exit(1)
	}
}

const usage = `usage: zcctrace <command> [flags] <trace>

trace inputs may be JSONL or binary .zct, plain or gzipped; the format
is detected from content, never the file name

commands:
  summary    whole-trace digest: span, job lifecycle counts, wait stats
  hist       event-kind histogram
  series     queue depth, running jobs, and per-partition utilization over time
  waits      wait-time breakdown by job-size bin and on-time/late class
  timeline   every event of one job (-job N)
  diff       compare two traces; report the first divergent event
  export     convert any trace to JSONL (byte-identical to a direct JSONL run)

summary, hist, and series take -j N to decode .zct blocks on N cores
(output is identical to -j 1); run "zcctrace <command> -h" for flags
`

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("a command is required")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "summary":
		return cmdSummary(rest, stdout, stderr)
	case "hist":
		return cmdHist(rest, stdout, stderr)
	case "series":
		return cmdSeries(rest, stdout, stderr)
	case "waits":
		return cmdWaits(rest, stdout, stderr)
	case "timeline":
		return cmdTimeline(rest, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdout, stderr)
	case "export":
		return cmdExport(rest, stdout, stderr)
	case "-h", "-help", "--help", "help":
		fmt.Fprint(stdout, usage)
		return nil
	default:
		fmt.Fprint(stderr, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// openTrace opens a trace argument ("-" = stdin).
func openTrace(path string) (io.ReadCloser, error) {
	if path == "-" {
		return io.NopCloser(os.Stdin), nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// oneTraceArg parses flags expecting exactly one positional trace path.
func oneTraceArg(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected one trace file, got %d arguments", fs.NArg())
	}
	return fs.Arg(0), nil
}

func render(w io.Writer, t *zccloud.ResultTable, markdown bool) {
	if markdown {
		fmt.Fprintln(w, t.Markdown())
	} else {
		fmt.Fprintln(w, t.Text())
	}
}

// summarizeArg digests the trace argument: block-parallel over a .zct
// file path, streaming over stdin or non-.zct formats.
func summarizeArg(path string, jobs int) (*zccloud.TraceSummary, error) {
	if path == "-" {
		return zccloud.SummarizeTrace(os.Stdin)
	}
	return zccloud.SummarizeTraceFile(path, jobs)
}

func cmdSummary(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "render markdown instead of text")
	jobs := fs.Int("j", 1, "decode .zct blocks on N goroutines (output identical to -j 1)")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	s, err := summarizeArg(path, *jobs)
	if err != nil {
		return err
	}
	t := &zccloud.ResultTable{
		ID:      "summary",
		Title:   fmt.Sprintf("Trace summary — %s", path),
		Columns: []string{"Metric", "Value"},
	}
	t.AddRow("Events", s.Events)
	t.AddRow("Span (days)", fmt.Sprintf("%.2f – %.2f", s.FirstDays, s.LastDays))
	t.AddRow("Jobs arrived", s.Arrived)
	t.AddRow("Jobs completed", s.Completed)
	t.AddRow("Jobs started", s.Started)
	t.AddRow("Jobs backfilled", s.Backfilled)
	t.AddRow("Jobs killed", s.Killed)
	t.AddRow("Jobs requeued", s.Requeued)
	t.AddRow("Jobs abandoned", s.Abandoned)
	t.AddRow("Jobs pinned to always-on", s.Pinned)
	t.AddRow("Jobs unrunnable", s.Unrunnable)
	t.AddRow("Wait mean (h)", s.WaitMeanHrs)
	t.AddRow("Wait p50 (h)", s.WaitP50Hrs)
	t.AddRow("Wait p90 (h)", s.WaitP90Hrs)
	t.AddRow("Wait max (h)", s.WaitMaxHrs)
	t.AddRow("Partitions", strings.Join(s.Partitions, ", "))
	render(stdout, t, *markdown)
	return nil
}

func cmdHist(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace hist", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "render markdown instead of text")
	jobs := fs.Int("j", 1, "decode .zct blocks on N goroutines (output identical to -j 1)")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	s, err := summarizeArg(path, *jobs)
	if err != nil {
		return err
	}
	t := &zccloud.ResultTable{
		ID:      "hist",
		Title:   fmt.Sprintf("Event-kind histogram — %s", path),
		Columns: []string{"Event", "Count", "Share", "Per day"},
	}
	for _, k := range s.Kinds {
		share := 0.0
		if s.Events > 0 {
			share = 100 * float64(k.Count) / float64(s.Events)
		}
		t.AddRow(k.Kind, k.Count, fmt.Sprintf("%.1f%%", share), k.PerDay)
	}
	render(stdout, t, *markdown)
	return nil
}

func cmdSeries(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace series", flag.ContinueOnError)
	fs.SetOutput(stderr)
	step := fs.Duration("step", time.Hour, "sample step in simulated time (e.g. 30m, 6h)")
	format := fs.String("format", "csv", "output format: csv or markdown")
	jobs := fs.Int("j", 1, "decode .zct blocks on N goroutines (output identical to -j 1)")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	if *format != "csv" && *format != "markdown" {
		return fmt.Errorf("unknown -format %q (want csv or markdown)", *format)
	}
	var s *zccloud.TraceSeries
	if path == "-" {
		s, err = zccloud.BuildTraceSeries(os.Stdin, zccloud.Time(step.Seconds()))
	} else {
		s, err = zccloud.BuildTraceSeriesFile(path, zccloud.Time(step.Seconds()), *jobs)
	}
	if err != nil {
		return err
	}

	cols := []string{"days", "queue", "running"}
	for _, p := range s.Parts {
		cols = append(cols, "busy_"+p)
	}
	for i, p := range s.Parts {
		if s.Sizes[i] > 0 {
			cols = append(cols, "util_"+p)
		}
	}
	rowOf := func(p zccloud.TraceSeriesPoint) []string {
		row := []string{
			fmt.Sprintf("%.4f", p.Days),
			fmt.Sprintf("%d", p.Queue),
			fmt.Sprintf("%d", p.Running),
		}
		for _, b := range p.Busy {
			row = append(row, fmt.Sprintf("%d", b))
		}
		for i := range s.Parts {
			if s.Sizes[i] > 0 {
				row = append(row, fmt.Sprintf("%.4f", s.Utilization(p, i)))
			}
		}
		return row
	}
	if *format == "markdown" {
		t := &zccloud.ResultTable{
			ID:      "series",
			Title:   fmt.Sprintf("Queue and utilization series — %s (step %s)", path, step),
			Columns: cols,
		}
		for _, p := range s.Points {
			row := make([]any, 0, len(cols))
			for _, c := range rowOf(p) {
				row = append(row, c)
			}
			t.AddRow(row...)
		}
		render(stdout, t, true)
		return nil
	}
	fmt.Fprintln(stdout, strings.Join(cols, ","))
	for _, p := range s.Points {
		fmt.Fprintln(stdout, strings.Join(rowOf(p), ","))
	}
	return nil
}

func cmdWaits(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace waits", flag.ContinueOnError)
	fs.SetOutput(stderr)
	markdown := fs.Bool("markdown", false, "render markdown instead of text")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := zccloud.BuildTraceWaits(f)
	if err != nil {
		return err
	}
	t := &zccloud.ResultTable{
		ID:      "waits",
		Title:   fmt.Sprintf("Wait time by job size and timeliness — %s", path),
		Columns: []string{"Class", "Jobs", "Avg wait (h)"},
	}
	for _, b := range w.BySize {
		if b.Jobs == 0 {
			continue
		}
		t.AddRow(b.Label+" nodes", b.Jobs, b.AvgWaitHrs)
	}
	if w.Classified {
		t.AddRow(w.OnTime.Label, w.OnTime.Jobs, w.OnTime.AvgWaitHrs)
		t.AddRow(w.Late.Label, w.Late.Jobs, w.Late.AvgWaitHrs)
	} else {
		t.AddNote("no window transitions in this trace; on-time/late classification unavailable")
	}
	t.AddNote("on-time: submitted while a window was open with room for the job's request (paper Fig. 6)")
	render(stdout, t, *markdown)
	return nil
}

func cmdTimeline(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace timeline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jobID := fs.Int("job", -1, "job ID to trace (required)")
	markdown := fs.Bool("markdown", false, "render markdown instead of text")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	if *jobID < 0 {
		return fmt.Errorf("timeline needs -job N")
	}
	f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := zccloud.TraceJobTimeline(f, *jobID)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("job %d does not appear in %s", *jobID, path)
	}
	t := &zccloud.ResultTable{
		ID:      "timeline",
		Title:   fmt.Sprintf("Job %d timeline — %s", *jobID, path),
		Columns: []string{"Day", "Event", "Partition", "Nodes", "Detail"},
	}
	for _, e := range events {
		t.AddRow(fmt.Sprintf("%.4f", float64(e.Time)/float64(zccloud.Day)),
			e.Kind.String(), e.Partition, e.Nodes, e.Detail)
	}
	t.AddNote("detail is event-specific: request/wait/runtime in seconds, queue length, retry count, ...")
	render(stdout, t, *markdown)
	return nil
}

func cmdDiff(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("diff needs exactly two trace files")
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	fa, err := openTrace(pathA)
	if err != nil {
		return err
	}
	defer fa.Close()
	fb, err := openTrace(pathB)
	if err != nil {
		return err
	}
	defer fb.Close()
	d, err := zccloud.DiffTraces(fa, fb)
	if err != nil {
		return err
	}
	if !d.Diverged {
		fmt.Fprintf(stdout, "traces identical: %d events\n", d.Index)
		return nil
	}
	fmt.Fprintf(stdout, "traces diverge at event %d (after %d identical events):\n", d.Index, d.Index)
	fmt.Fprintf(stdout, "  %s: %s\n", pathA, fmtEvent(d.A))
	fmt.Fprintf(stdout, "  %s: %s\n", pathB, fmtEvent(d.B))
	return fmt.Errorf("traces diverge at event %d", d.Index)
}

// cmdExport converts any trace to JSONL, the interchange format. The
// output goes through the same encoder the simulator's JSONL sink
// uses, so exporting a .zct trace yields bytes identical to tracing
// the run straight to JSONL.
func cmdExport(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zcctrace export", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "-", "output path (.jsonl or .jsonl.gz; \"-\" = stdout)")
	path, err := oneTraceArg(fs, args)
	if err != nil {
		return err
	}
	if strings.HasSuffix(*out, ".zct") {
		return fmt.Errorf("export emits JSONL; to produce a .zct trace, run the simulator with -trace out.zct")
	}
	f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if *out == "-" {
		jw := zccloud.NewJSONLTracer(stdout)
		if err := zccloud.ReadAnyTrace(f, func(e zccloud.TraceEvent) error {
			jw.Trace(e)
			return nil
		}); err != nil {
			return err
		}
		return jw.Close()
	}
	sink, err := zccloud.CreateTraceFile(*out)
	if err != nil {
		return err
	}
	if err := zccloud.ReadAnyTrace(f, func(e zccloud.TraceEvent) error {
		sink.Trace(e)
		return nil
	}); err != nil {
		sink.Abort()
		return err
	}
	return sink.Commit()
}

func fmtEvent(e *zccloud.TraceEvent) string {
	if e == nil {
		return "<end of trace>"
	}
	s := fmt.Sprintf("t=%.6g %s", float64(e.Time), e.Kind)
	if e.Job >= 0 {
		s += fmt.Sprintf(" job=%d", e.Job)
	}
	if e.Partition != "" {
		s += " part=" + e.Partition
	}
	if e.Nodes != 0 {
		s += fmt.Sprintf(" nodes=%d", e.Nodes)
	}
	if e.Detail != 0 {
		s += fmt.Sprintf(" detail=%g", e.Detail)
	}
	return s
}
