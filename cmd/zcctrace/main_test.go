package main

import (
	"bytes"
	"compress/gzip"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zccloud"
	"zccloud/internal/tracebin"
)

var update = flag.Bool("update", false, "rewrite golden files")

func runCmd(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var out, errb bytes.Buffer
	err := run(args, &out, &errb)
	return out.String(), errb.String(), err
}

func checkGolden(t *testing.T, got, goldenPath string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s", goldenPath, got, want)
	}
}

func TestSummaryGolden(t *testing.T) {
	out, _, err := runCmd(t, "summary", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, out, "testdata/summary.golden")
}

func TestSeriesGolden(t *testing.T) {
	out, _, err := runCmd(t, "series", "-step", "6h", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, out, "testdata/series.golden")
}

func TestWaitsGolden(t *testing.T) {
	out, _, err := runCmd(t, "waits", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, out, "testdata/waits.golden")
}

func TestHistAndTimelineRun(t *testing.T) {
	out, _, err := runCmd(t, "hist", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "arrive") || !strings.Contains(out, "window-up") {
		t.Errorf("hist output missing expected kinds:\n%s", out)
	}
	out, _, err = runCmd(t, "timeline", "-job", "2", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"arrive", "enqueue", "start", "finish"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	if _, _, err := runCmd(t, "timeline", "-job", "99", "testdata/small.jsonl"); err == nil {
		t.Error("timeline of an absent job should fail")
	}
}

// TestGzipTransparent verifies every reader decompresses gzipped traces
// by content sniffing: same analysis output modulo the path in titles.
func TestGzipTransparent(t *testing.T) {
	raw, err := os.ReadFile("testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(t.TempDir(), "small.jsonl.gz")
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(gzPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	plain, _, err := runCmd(t, "summary", "testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	zipped, _, err := runCmd(t, "summary", gzPath)
	if err != nil {
		t.Fatal(err)
	}
	plain = strings.ReplaceAll(plain, "testdata/small.jsonl", "TRACE")
	zipped = strings.ReplaceAll(zipped, gzPath, "TRACE")
	if plain != zipped {
		t.Errorf("gzip summary differs from plain:\n--- plain ---\n%s\n--- gzip ---\n%s", plain, zipped)
	}
}

func TestDiffIdentical(t *testing.T) {
	out, _, err := runCmd(t, "diff", "testdata/small.jsonl", "testdata/small.jsonl")
	if err != nil {
		t.Fatalf("identical traces should not diverge: %v", err)
	}
	if !strings.Contains(out, "traces identical: 16 events") {
		t.Errorf("unexpected diff output: %q", out)
	}
}

// TestDiffPerturbed flips one field mid-trace and checks diff names the
// exact first divergent event.
func TestDiffPerturbed(t *testing.T) {
	raw, err := os.ReadFile("testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	// Perturb line 8 (index 7): the backfill-start wait changes 100 -> 250.
	perturbed := strings.Replace(lines[7], `"detail":100`, `"detail":250`, 1)
	if perturbed == lines[7] {
		t.Fatalf("perturbation did not apply to %q", lines[7])
	}
	lines[7] = perturbed
	bPath := filepath.Join(t.TempDir(), "perturbed.jsonl")
	if err := os.WriteFile(bPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	out, _, err := runCmd(t, "diff", "testdata/small.jsonl", bPath)
	if err == nil {
		t.Fatal("diff of perturbed trace should report divergence via a non-nil error")
	}
	if !strings.Contains(out, "diverge at event 7") {
		t.Errorf("diff should name event 7 as the first divergence:\n%s", out)
	}
	if !strings.Contains(out, "detail=100") || !strings.Contains(out, "detail=250") {
		t.Errorf("diff should show both versions of the event:\n%s", out)
	}
}

// TestDiffTruncated checks the shorter-trace case: divergence at the
// missing tail, reported as end-of-trace.
func TestDiffTruncated(t *testing.T) {
	raw, err := os.ReadFile("testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	bPath := filepath.Join(t.TempDir(), "short.jsonl")
	if err := os.WriteFile(bPath, []byte(strings.Join(lines[:len(lines)-2], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err := runCmd(t, "diff", "testdata/small.jsonl", bPath)
	if err == nil {
		t.Fatal("truncated trace should diverge")
	}
	if !strings.Contains(out, "<end of trace>") {
		t.Errorf("diff should mark the shorter trace's end:\n%s", out)
	}
}

// zctTwin re-encodes a JSONL trace as .zct (with small blocks so the
// parallel scans see several) and returns the new path.
func zctTwin(t *testing.T, jsonlPath string, blockEvents int) string {
	t.Helper()
	f, err := os.Open(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out := filepath.Join(t.TempDir(), "twin.zct")
	of, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	w := tracebin.NewWriterBlockSize(of, blockEvents)
	if err := zccloud.ReadAnyTrace(f, func(e zccloud.TraceEvent) error {
		w.Trace(e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := of.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestZCTTransparent checks every subcommand reads a .zct trace and
// produces the same analysis as its JSONL twin.
func TestZCTTransparent(t *testing.T) {
	zct := zctTwin(t, "testdata/small.jsonl", 4)
	for _, args := range [][]string{
		{"summary"}, {"hist"}, {"series", "-step", "6h"}, {"waits"}, {"timeline", "-job", "2"},
	} {
		plain, _, err := runCmd(t, append(args, "testdata/small.jsonl")...)
		if err != nil {
			t.Fatalf("%v on jsonl: %v", args, err)
		}
		bin, _, err := runCmd(t, append(args, zct)...)
		if err != nil {
			t.Fatalf("%v on zct: %v", args, err)
		}
		plain = strings.ReplaceAll(plain, "testdata/small.jsonl", "TRACE")
		bin = strings.ReplaceAll(bin, zct, "TRACE")
		if plain != bin {
			t.Errorf("%v differs between formats:\n--- jsonl ---\n%s\n--- zct ---\n%s", args, plain, bin)
		}
	}
}

// TestParallelIdentical checks -j N output matches -j 1 byte for byte
// on a multi-block .zct trace.
func TestParallelIdentical(t *testing.T) {
	zct := zctTwin(t, "testdata/small.jsonl", 3)
	for _, args := range [][]string{
		{"summary"}, {"hist"}, {"series", "-step", "6h"},
	} {
		one, _, err := runCmd(t, append(append([]string{args[0], "-j", "1"}, args[1:]...), zct)...)
		if err != nil {
			t.Fatalf("%v -j 1: %v", args, err)
		}
		many, _, err := runCmd(t, append(append([]string{args[0], "-j", "4"}, args[1:]...), zct)...)
		if err != nil {
			t.Fatalf("%v -j 4: %v", args, err)
		}
		if one != many {
			t.Errorf("%v: -j 4 output differs from -j 1:\n--- j1 ---\n%s\n--- j4 ---\n%s", args, one, many)
		}
	}
}

// TestExportByteIdentical is the round-trip fidelity guarantee: a .zct
// trace exported to JSONL equals the original JSONL bytes exactly.
func TestExportByteIdentical(t *testing.T) {
	want, err := os.ReadFile("testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	zct := zctTwin(t, "testdata/small.jsonl", 4)

	out, _, err := runCmd(t, "export", zct)
	if err != nil {
		t.Fatalf("export to stdout: %v", err)
	}
	if out != string(want) {
		t.Errorf("export differs from the original JSONL:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}

	// Through -o, including gzip.
	dest := filepath.Join(t.TempDir(), "out.jsonl.gz")
	if _, _, err := runCmd(t, "export", "-o", dest, zct); err != nil {
		t.Fatalf("export -o: %v", err)
	}
	f, err := os.Open(dest)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, err := got.ReadFrom(zr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("gzipped export differs from the original JSONL")
	}

	// Exporting to .zct is refused (export is JSONL-only).
	if _, _, err := runCmd(t, "export", "-o", "no.zct", zct); err == nil {
		t.Error("export -o x.zct should be rejected")
	}
}

// TestDiffMixedFormat diffs a .zct trace against JSONL inputs: the
// twin matches, a perturbed copy names the same first divergence as
// the pure-JSONL diff.
func TestDiffMixedFormat(t *testing.T) {
	zct := zctTwin(t, "testdata/small.jsonl", 4)
	out, _, err := runCmd(t, "diff", zct, "testdata/small.jsonl")
	if err != nil {
		t.Fatalf("mixed-format diff of identical traces: %v\n%s", err, out)
	}
	if !strings.Contains(out, "traces identical: 16 events") {
		t.Errorf("unexpected mixed diff output: %q", out)
	}

	raw, err := os.ReadFile("testdata/small.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	lines[7] = strings.Replace(lines[7], `"detail":100`, `"detail":250`, 1)
	bPath := filepath.Join(t.TempDir(), "perturbed.jsonl")
	if err := os.WriteFile(bPath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _, err = runCmd(t, "diff", zct, bPath)
	if err == nil {
		t.Fatal("perturbed mixed diff should diverge")
	}
	if !strings.Contains(out, "diverge at event 7") {
		t.Errorf("mixed diff should name event 7:\n%s", out)
	}
}

func TestUnknownCommand(t *testing.T) {
	if _, _, err := runCmd(t, "bogus"); err == nil {
		t.Error("unknown command should fail")
	}
	if _, _, err := runCmd(t); err == nil {
		t.Error("no command should fail")
	}
}
