// Command netchaos runs the internal/netchaos TCP fault injector as a
// standalone proxy, for soak scripts and manual partition drills:
//
//	netchaos -listen 127.0.0.1:9421 -target 127.0.0.1:8421 \
//	    -latency 30ms -drop 0.05 -seed 42
//
// Point agents at the -listen address and the control plane keeps its
// real one; the proxy degrades the path between them. It prints one
// parseable line on startup:
//
//	msg=proxying addr=<listen addr> target=<target>
//
// so scripts can scrape the bound address (handy with -listen :0).
// SIGINT/SIGTERM shuts it down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"zccloud/internal/netchaos"
	"zccloud/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil); err != nil {
		fmt.Fprintf(os.Stderr, "netchaos: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr *os.File, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("netchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:0", "address to listen on")
		target    = fs.String("target", "", "address to forward to (required)")
		seed      = fs.Int64("seed", 1, "fault RNG seed (deterministic draws)")
		latency   = fs.Duration("latency", 0, "added latency per chunk, each direction")
		jitter    = fs.Duration("jitter", 0, "uniform extra latency in [0, jitter)")
		drop      = fs.Float64("drop", 0, "per-chunk probability of tearing the connection down")
		reset     = fs.Float64("reset", 0, "per-connection probability of an immediate reset")
		bandwidth = fs.Int("bandwidth", 0, "per-direction throughput cap in bytes/second (0 = unlimited)")
		partition = fs.String("partition", "none", "black-hole one direction: none, c2s, s2c, or both")
		version   = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stderr, "netchaos", obs.BuildInfo())
		return nil
	}
	if *target == "" {
		return fmt.Errorf("-target is required")
	}
	f := netchaos.Faults{
		Latency:      *latency,
		Jitter:       *jitter,
		DropProb:     *drop,
		ResetProb:    *reset,
		BandwidthBPS: *bandwidth,
	}
	switch *partition {
	case "none":
	case "c2s":
		f.PartitionC2S = true
	case "s2c":
		f.PartitionS2C = true
	case "both":
		f.PartitionC2S, f.PartitionS2C = true, true
	default:
		return fmt.Errorf("-partition %q: want none, c2s, s2c, or both", *partition)
	}

	p, err := netchaos.New(*listen, *target, *seed)
	if err != nil {
		return err
	}
	defer p.Close()
	p.SetFaults(f)
	fmt.Fprintf(stdout, "msg=proxying addr=%s target=%s latency=%s jitter=%s drop=%g reset=%g bandwidth=%d partition=%s seed=%d\n",
		p.Addr(), *target, *latency, *jitter, *drop, *reset, *bandwidth, *partition, *seed)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	if stop == nil {
		stop = make(chan struct{})
	}
	select {
	case <-sigc:
	case <-stop:
	}
	// Give in-flight chunks a beat to settle before tearing down.
	time.Sleep(10 * time.Millisecond)
	return nil
}
