// Command zccexp runs the paper's experiments — every table and figure of
// the evaluation — and renders the results as text or markdown, followed
// by a telemetry summary of the scheduler and engine work done.
//
// Examples:
//
//	zccexp -quick                      # all experiments, reduced preset
//	zccexp -quick -ids fig5,fig7       # a subset
//	zccexp -markdown -o EXPERIMENTS.md # paper-scale, writes markdown
//	zccexp -quick -trace t.jsonl -metrics m.json   # event trace + metrics
//	zccexp -quick -progress            # progress lines on stderr
//	zccexp -quick -run-dir run/        # journaled, crash-safe sweep
//	zccexp -quick -resume run/         # ...picks up where it stopped
//
// With -run-dir, every experiment ("cell") runs under a panic guard and
// optional watchdog (-cell-timeout), and its outcome is journaled to the
// run directory as soon as it settles. SIGINT/SIGTERM stops the sweep at
// a safe point, flushes the completed tables, and exits nonzero with a
// resume hint; -resume skips completed cells and re-runs only failures.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zccexp: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zccexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "reduced preset (28-day workload, 60-day market, 60 sites)")
		seed     = fs.Int64("seed", 42, "random seed")
		ids      = fs.String("ids", "", "comma-separated experiment ids (empty = all)")
		markdown = fs.Bool("markdown", false, "render markdown instead of text")
		out      = fs.String("o", "-", "output file (\"-\" for stdout)")
		list     = fs.Bool("list", false, "list experiment ids and exit")
		version  = fs.Bool("version", false, "print build information and exit")

		days       = fs.Float64("days", 0, "override workload span in days (0 = preset)")
		marketDays = fs.Float64("market-days", 0, "override market dataset span in days (0 = preset)")
		sites      = fs.Int("sites", 0, "override wind-site count (0 = preset)")
		miraNodes  = fs.Int("mira-nodes", 0, "override base system size in nodes (0 = preset)")

		mtbf       = fs.Float64("mtbf", 0, "resilience: single MTBF in hours instead of the default sweep (0 = sweep)")
		faultSeed  = fs.Int64("fault-seed", 0, "resilience: fault injector seed (0 = derive from -seed)")
		brownout   = fs.Float64("brownout", -1, "resilience: per-window brownout probability (-1 = preset)")
		retryLimit = fs.Int("retry-limit", 0, "resilience: kill/requeue retries before abandonment (0 = unlimited)")

		runDir      = fs.String("run-dir", "", "journal each cell to this directory (crash-safe, resumable sweep)")
		resumeDir   = fs.String("resume", "", "resume the sweep in this run directory (skips completed cells)")
		check       = fs.Bool("check", false, "validate scheduler invariants after every event")
		cellTimeout = fs.Duration("cell-timeout", 0, "per-experiment watchdog budget, e.g. 10m (0 = none)")
		stopAfter   = fs.Int("interrupt-after", 0, "stop the sweep after N executed cells (deterministic interruption, for testing)")

		traceOut   = fs.String("trace", "", "write a simulation event trace to this file (.zct = binary columnar, .gz = gzipped JSONL, else JSONL)")
		httpAddr   = fs.String("http", "", "serve live /status, /metrics, and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
		spans      = fs.Bool("spans", false, "time run phases (wall clock) and render a span summary")
		metricsOut = fs.String("metrics", "", "write a JSON metrics snapshot to this file")
		logLevel   = fs.String("log-level", "", "emit structured logs to stderr at this threshold: debug, info, warn, or error (empty = no logs)")
		logFormat  = fs.String("log-format", "logfmt", "structured log encoding: logfmt or json")
		runID      = fs.String("run-id", "", "correlation ID bound to every log line and stamped on every trace event")
		progress   = fs.Bool("progress", false, "report experiment progress and rate to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Fprintln(stdout, "zccexp", zccloud.BuildInfo())
		return nil
	}
	if *list {
		for _, e := range zccloud.Experiments {
			fmt.Fprintf(stdout, "%-12s %-9s %s\n", e.ID, e.Kind, e.Title)
		}
		return nil
	}
	if *runDir != "" && *resumeDir != "" && *runDir != *resumeDir {
		return fmt.Errorf("-run-dir and -resume name different directories")
	}
	dir, doResume := *runDir, false
	if *resumeDir != "" {
		dir, doResume = *resumeDir, true
	}
	if *stopAfter > 0 && dir == "" {
		return fmt.Errorf("-interrupt-after needs a journaled sweep (-run-dir)")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM stop the run cooperatively at the next safe point:
	// between cells, or mid-simulation at an event boundary.
	var sig atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sigc:
			sig.Store(true)
			fmt.Fprintln(stderr, "zccexp: interrupt received; stopping at the next safe point")
		case <-done:
		}
	}()

	opt := zccloud.ExperimentOptions{Seed: *seed}
	if *quick {
		opt = zccloud.QuickOptions(*seed)
	}
	if *days > 0 {
		opt.WorkloadDays = *days
	}
	if *marketDays > 0 {
		opt.MarketDays = *marketDays
	}
	if *sites > 0 {
		opt.WindSites = *sites
	}
	if *miraNodes > 0 {
		opt.MiraNodes = *miraNodes
	}
	if *mtbf > 0 {
		opt.FaultMTBFHours = *mtbf
	}
	if *faultSeed != 0 {
		opt.FaultSeed = *faultSeed
	}
	if *brownout >= 0 {
		opt.BrownoutProb = *brownout
	}
	if *retryLimit > 0 {
		opt.RetryLimit = *retryLimit
	}

	// Telemetry: a registry always backs the summary table; the tracer
	// and progress reporter are opt-in.
	obsOpt := zccloud.ObsOptions{Metrics: zccloud.NewMetricsRegistry(), Check: *check, RunID: *runID}
	if *logLevel != "" {
		lv, err := zccloud.ParseLogLevel(*logLevel)
		if err != nil {
			return err
		}
		format, err := zccloud.ParseLogFormat(*logFormat)
		if err != nil {
			return err
		}
		obsOpt.Log = zccloud.NewLogger(stderr, lv, format)
	}
	if *spans || *httpAddr != "" {
		obsOpt.Timings = zccloud.NewSpanTimings()
	}
	if *httpAddr != "" {
		obsOpt.Status = zccloud.NewRunStatus()
		obsOpt.Status.SetPhase("setup")
		ts := zccloud.NewTimeSeries(time.Second, 600,
			zccloud.SampleStatus(obsOpt.Status, obsOpt.Metrics))
		ts.Start()
		defer ts.Stop()
		intro, err := zccloud.StartIntrospection(*httpAddr, obsOpt.Metrics, obsOpt.Status, obsOpt.Timings, ts)
		if err != nil {
			return fmt.Errorf("starting introspection server: %w", err)
		}
		// Graceful shutdown: let in-flight scrapes finish (bounded),
		// then close.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := intro.Shutdown(ctx); err != nil {
				fmt.Fprintf(stderr, "zccexp: introspection shutdown: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "zccexp: introspection server on http://%s\n", intro.Addr())
	}
	var traceFile zccloud.TraceSink
	if *traceOut != "" {
		tf, err := zccloud.CreateTraceSink(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace output: %w", err)
		}
		defer tf.Abort() // no-op once committed
		traceFile = tf
		obsOpt.Tracer = tf
	}
	commitTrace := func() error {
		if traceFile == nil {
			return nil
		}
		t := traceFile
		traceFile = nil
		if err := t.Commit(); err != nil {
			return fmt.Errorf("writing trace: %v", err)
		}
		return nil
	}
	if *progress {
		obsOpt.Progress = zccloud.NewProgressReporter(stderr, 5*time.Second)
	}

	selected := zccloud.Experiments
	if *ids != "" {
		selected = nil
		for _, id := range strings.Split(*ids, ",") {
			e, err := experimentByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	w := io.Writer(stdout)
	var outFile *zccloud.AtomicFile
	if *out != "-" {
		af, err := zccloud.CreateAtomic(*out)
		if err != nil {
			return fmt.Errorf("creating output file: %w", err)
		}
		defer af.Abort() // no-op once committed
		w = af
		outFile = af
	}
	commitOut := func() error {
		if outFile == nil {
			return nil
		}
		o := outFile
		outFile = nil
		return o.Commit()
	}

	if *markdown {
		fmt.Fprintf(w, "# ZCCloud experiment results\n\n")
		fmt.Fprintf(w, "Generated by `zccexp` (seed %d, %s preset). Paper: Yang & Chien, "+
			"\"ZCCloud: Exploring Wasted Green Power for High-Performance Computing\", IPPS 2016.\n\n",
			*seed, presetName(*quick))
	}
	render := func(tb *zccloud.ResultTable) {
		if *markdown {
			fmt.Fprintln(w, tb.Markdown())
		} else {
			fmt.Fprintln(w, tb.Text())
		}
	}
	// finish renders the telemetry summary and lands every output file
	// atomically; called on complete and interrupted runs alike, so an
	// interrupted sweep still flushes its completed tables.
	finish := func() error {
		obsOpt.Status.SetPhase("done")
		render(zccloud.MetricsSummaryTable(obsOpt.Metrics.Snapshot()))
		if *spans {
			render(zccloud.SpanSummaryTable(obsOpt.Timings.Snapshot()))
		}
		if err := commitTrace(); err != nil {
			return err
		}
		if *metricsOut != "" {
			f, err := zccloud.CreateAtomic(*metricsOut)
			if err != nil {
				return fmt.Errorf("creating metrics output: %w", err)
			}
			if err := obsOpt.Metrics.Snapshot().WriteJSON(f); err != nil {
				f.Abort()
				return err
			}
			if err := f.Commit(); err != nil {
				return err
			}
		}
		if *memprofile != "" {
			f, err := os.Create(*memprofile)
			if err != nil {
				return fmt.Errorf("creating heap profile: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return commitOut()
	}

	if dir != "" {
		return runSweep(dir, doResume, opt, obsOpt, selected, *cellTimeout, *stopAfter,
			&sig, render, finish, stderr)
	}

	// Direct mode: run cells in-process with no journal. The live status
	// board (when -http is set) still tracks per-experiment state.
	obsOpt.Interrupt = sig.Load
	lab := zccloud.NewLab(opt)
	lab.SetObs(obsOpt)
	expIDs := make([]string, len(selected))
	for i, e := range selected {
		expIDs[i] = e.ID
	}
	obsOpt.Status.InitSweep("", expIDs)
	obsOpt.Progress.StartSteps(len(selected))
	for _, e := range selected {
		start := time.Now()
		obsOpt.Progress.Phase(e.ID)
		obsOpt.Status.SetPhase(e.ID)
		obsOpt.Status.SetCell(e.ID, "running", false, 0)
		tb, err := e.Run(lab)
		elapsed := time.Since(start)
		if err != nil {
			if errors.Is(err, zccloud.ErrRunInterrupted) {
				obsOpt.Status.SetCell(e.ID, "interrupted", false, elapsed)
				if ferr := finish(); ferr != nil {
					return ferr
				}
				return fmt.Errorf("interrupted during %s; completed tables flushed (use -run-dir for resumable sweeps)", e.ID)
			}
			obsOpt.Status.SetCell(e.ID, "error", false, elapsed)
			return fmt.Errorf("%s: %v", e.ID, err)
		}
		obsOpt.Status.SetCell(e.ID, "ok", false, elapsed)
		obsOpt.Progress.StepDone(e.ID, elapsed, false)
		render(tb)
		fmt.Fprintf(stderr, "%-12s done in %v\n", e.ID, elapsed.Round(time.Millisecond))
	}
	return finish()
}

// runSweep drives the journaled, resumable sweep mode.
func runSweep(dir string, doResume bool, opt zccloud.ExperimentOptions,
	obsOpt zccloud.ObsOptions, selected []zccloud.Experiment,
	cellTimeout time.Duration, stopAfter int, sig *atomic.Bool,
	render func(*zccloud.ResultTable), finish func() error, stderr io.Writer) error {

	var executed atomic.Int64
	res, err := zccloud.RunSweep(zccloud.SweepConfig{
		Dir:         dir,
		Options:     opt,
		Obs:         obsOpt,
		Experiments: selected,
		Resume:      doResume,
		CellTimeout: cellTimeout,
		Interrupt: func() bool {
			return sig.Load() || (stopAfter > 0 && executed.Load() >= int64(stopAfter))
		},
		OnCell: func(rec zccloud.SweepCellRecord, skipped bool) {
			if skipped {
				fmt.Fprintf(stderr, "%-12s skipped (completed in a previous run)\n", rec.ID)
				return
			}
			executed.Add(1)
			fmt.Fprintf(stderr, "%-12s %s in %v\n", rec.ID, rec.Status,
				(time.Duration(rec.ElapsedMS) * time.Millisecond).Round(time.Millisecond))
		},
	})
	interrupted := errors.Is(err, zccloud.ErrSweepInterrupted)
	if err != nil && !interrupted {
		return err
	}
	for _, tb := range res.Tables {
		render(tb)
	}
	if ferr := finish(); ferr != nil {
		return ferr
	}
	if interrupted {
		fmt.Fprintf(stderr, "zccexp: sweep interrupted; %d completed table(s) flushed\n", len(res.Tables))
		fmt.Fprintf(stderr, "zccexp: resume with the same flags plus -resume %s\n", dir)
		return fmt.Errorf("interrupted")
	}
	if len(res.Failed) > 0 {
		return fmt.Errorf("%d cell(s) failed (%s); inspect %s/cells.jsonl and re-run with -resume %s",
			len(res.Failed), strings.Join(res.Failed, ", "), dir, dir)
	}
	return nil
}

func experimentByID(id string) (zccloud.Experiment, error) {
	for _, e := range zccloud.Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return zccloud.Experiment{}, fmt.Errorf("unknown experiment id %q (use -list)", id)
}

func presetName(quick bool) string {
	if quick {
		return "quick"
	}
	return "paper-scale"
}
