package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPresetName(t *testing.T) {
	if presetName(true) != "quick" || presetName(false) != "paper-scale" {
		t.Error("presetName wrong")
	}
}

func TestRunList(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-list"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig5", "fig7", "table1"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestRunVersion(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-version"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "zccexp ") {
		t.Errorf("-version output = %q", out.String())
	}
}

func TestRunUnknownID(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-ids", "nope"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment id") {
		t.Fatalf("err = %v, want unknown experiment id", err)
	}
}

// TestRunTraceDeterminism is the CLI-level acceptance check: two
// same-seed runs must emit byte-identical traces and metrics snapshots.
func TestRunTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment twice")
	}
	dir := t.TempDir()
	args := []string{"-quick", "-days", "7", "-mira-nodes", "4096", "-ids", "fig5"}
	runOnce := func(tag string) (traceData, metricsData []byte) {
		tp := filepath.Join(dir, tag+".jsonl")
		mp := filepath.Join(dir, tag+".json")
		var out, errw bytes.Buffer
		a := append(append([]string{}, args...), "-trace", tp, "-metrics", mp)
		if err := run(a, &out, &errw); err != nil {
			t.Fatalf("run %s: %v\nstderr: %s", tag, err, errw.String())
		}
		if !strings.Contains(out.String(), "Telemetry summary") {
			t.Errorf("output missing telemetry summary table")
		}
		var err error
		traceData, err = os.ReadFile(tp)
		if err != nil {
			t.Fatal(err)
		}
		metricsData, err = os.ReadFile(mp)
		if err != nil {
			t.Fatal(err)
		}
		return traceData, metricsData
	}
	t1, m1 := runOnce("a")
	t2, m2 := runOnce("b")
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed traces differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("same-seed metrics snapshots differ")
	}
	if len(bytes.TrimSpace(t1)) == 0 {
		t.Fatal("trace is empty")
	}
	for i, line := range bytes.Split(bytes.TrimSpace(t1), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("trace line %d not JSON: %v", i+1, err)
		}
	}
	var snap map[string]any
	if err := json.Unmarshal(m1, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
	if _, ok := snap["counters"]; !ok {
		t.Error("metrics snapshot missing counters")
	}
}

func TestRunMarkdownIncludesMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small experiment")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "out.md")
	var errw bytes.Buffer
	err := run([]string{"-quick", "-days", "7", "-mira-nodes", "4096",
		"-ids", "fig5", "-markdown", "-o", out}, &bytes.Buffer{}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	md := string(data)
	if !strings.Contains(md, "Telemetry summary") {
		t.Error("markdown output missing telemetry summary")
	}
	if !strings.Contains(md, "Jobs started") {
		t.Error("markdown output missing jobs-started row")
	}
}
