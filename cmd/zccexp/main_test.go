package main

import "testing"

func TestPresetName(t *testing.T) {
	if presetName(true) != "quick" || presetName(false) != "paper-scale" {
		t.Error("presetName wrong")
	}
}
