package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// startDaemon runs the daemon body on an ephemeral port and returns its
// base URL, a stop trigger, and the exit-error channel.
func startDaemon(t *testing.T, extra ...string) (string, chan struct{}, chan error) {
	t.Helper()
	ready := make(chan string, 1)
	stop := make(chan struct{})
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-quiet"}, extra...)
	go func() { errc <- run(args, io.Discard, ready, stop) }()
	select {
	case addr := <-ready:
		return "http://" + addr, stop, errc
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	return "", nil, nil
}

func TestDaemonServesAndDrainsCleanly(t *testing.T) {
	url, stop, errc := startDaemon(t, "-workers", "2")

	resp, err := http.Post(url+"/v1/runs", "application/json",
		strings.NewReader(`{"days": 2, "mira_nodes": 4096}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(url + "/v1/runs/" + info.ID)
		if err != nil {
			t.Fatalf("status: %v", err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		json.Unmarshal(b, &info)
		if info.State == "done" {
			break
		}
		if info.State == "failed" || info.State == "cancelled" {
			t.Fatalf("run ended %s: %s", info.State, b)
		}
		if time.Now().After(deadline) {
			t.Fatalf("run stuck in %s", info.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Trigger the SIGTERM path; the daemon must exit nil within the
	// drain + shutdown budget.
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("drained daemon exited with error: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after stop")
	}
}

func TestDaemonCheckpointsInFlightRunOnStop(t *testing.T) {
	dir := t.TempDir()
	url, stop, errc := startDaemon(t,
		"-workers", "1", "-data", dir, "-drain-grace", "50ms")

	resp, err := http.Post(url+"/v1/runs", "application/json",
		strings.NewReader(`{"days": 365, "mira_nodes": 4096, "scale": 2}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var info struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(b, &info); err != nil {
		t.Fatal(err)
	}
	// Let it get going, then stop mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for info.State == "queued" && time.Now().Before(deadline) {
		r, err := http.Get(url + "/v1/runs/" + info.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		json.Unmarshal(b, &info)
		time.Sleep(time.Millisecond)
	}
	close(stop)
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("daemon exit: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon did not exit")
	}

	// The journal exists, and if the run was still in flight at stop, a
	// checkpoint snapshot was parked next to it.
	if _, err := os.Stat(filepath.Join(dir, "runs.jsonl")); err != nil {
		t.Fatalf("run journal missing: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snapshot.json"))
	data, _ := os.ReadFile(filepath.Join(dir, "runs.jsonl"))
	switch {
	case strings.Contains(string(data), `"checkpointed"`):
		if len(snaps) == 0 {
			t.Fatal("journal says checkpointed but no snapshot file on disk")
		}
	case strings.Contains(string(data), `"done"`):
		// finished before the drain — nothing to park
	default:
		t.Fatalf("run neither done nor checkpointed; journal:\n%s", data)
	}
}
