// Command zccd is the long-running zccloud simulation service: submit
// simulation or experiment specs over HTTP, poll their status, cancel
// them, and scrape service metrics.
//
//	zccd -addr 127.0.0.1:8421 -workers 4 -queue 32 -data /var/lib/zccd
//
//	curl -XPOST localhost:8421/v1/runs -d '{"days": 7, "zc_factor": 1}'
//	curl localhost:8421/v1/runs/r-000001
//	curl -XDELETE localhost:8421/v1/runs/r-000001
//
// Admission is bounded: a full queue sheds with 429 + Retry-After
// rather than buffering without limit. SIGINT/SIGTERM drains the
// service gracefully — admission stops (503), queued runs are
// cancelled, in-flight runs get -drain-grace to finish before being
// parked as resumable checkpoints under -data (zccsim -restore picks
// them up), and the HTTP server shuts down with a deadline. A clean
// drain exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"strconv"
	"strings"

	"zccloud/internal/admit"
	"zccloud/internal/fleet"
	"zccloud/internal/forecast"
	"zccloud/internal/obs"
	"zccloud/internal/serve"
	"zccloud/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "zccd: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable daemon body. ready (optional) receives the bound
// address once the API is listening; stop (optional) triggers the same
// path as SIGTERM.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("zccd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:8421", "HTTP listen address")
		workers     = fs.Int("workers", 2, "concurrent run executors")
		queue       = fs.Int("queue", 16, "admission queue depth; beyond it submissions are shed with 429")
		runTimeout  = fs.Duration("run-deadline", 10*time.Minute, "per-run wall-clock deadline (specs may tighten it)")
		drainGrace  = fs.Duration("drain-grace", 10*time.Second, "how long in-flight runs may keep running after a shutdown signal before being checkpointed")
		httpTimeout = fs.Duration("http-shutdown", 5*time.Second, "deadline for the HTTP server to finish in-flight requests on shutdown")
		dataDir     = fs.String("data", "", "directory for the run journal and drain checkpoints (empty = no persistence)")
		logLevel    = fs.String("log-level", "info", "log threshold: debug, info, warn, or error")
		logFormat   = fs.String("log-format", "logfmt", "log line encoding: logfmt or json")
		sampleEvery = fs.Duration("sample-interval", time.Second, "period of the /v1/timeseries sampler")
		sampleKeep  = fs.Int("sample-window", 600, "samples retained by /v1/timeseries")
		quiet       = fs.Bool("quiet", false, "suppress operational log lines")
		version     = fs.Bool("version", false, "print build information and exit")

		powerTrace   = fs.String("power-trace", "", "stranded-power schedule enabling renewable-aware admission: a windows CSV (start,end[,frac] in seconds), a MISO market CSV, or a recorded event trace (.zct/.jsonl); empty disables power admission")
		powerModel   = fs.String("power-model", "NetPrice0", "power: SP model applied to a market-CSV schedule (LMP<x> or NetPrice<x>)")
		powerSite    = fs.Int("power-site", -1, "power: market-CSV site (-1 = best duty factor)")
		powerMinMW   = fs.Float64("power-min-mw", 0, "power: minimum offered MW for a market interval to count as SP")
		powerPolicy  = fs.String("power-policy", "shed", "power: degrade mode for infeasible submissions — shed (429 + Retry-After) or park (accept degraded, resume when the window opens)")
		powerHorizon = fs.Float64("power-horizon", 0, "power: replay the schedule periodically with this period in schedule seconds (0 = play once)")
		powerSpeed   = fs.Float64("power-speed", 1, "power: schedule seconds per wall second (time compression for replayed schedules)")
		powerPredict = fs.String("power-predict", "oracle", "power: window-end forecast — oracle (scheduled ends), median, p<NN> (hazard quantile), or fixed:<seconds>")
		powerSafety  = fs.Float64("power-safety", admit.DefaultSafety, "power: cost-estimate safety factor")
		powerGuard   = fs.Duration("power-guard", 0, "power: wall-clock lead before a window's predicted end at which running simulations are preemptively checkpointed (0 = off)")
		powerNeedDL  = fs.Bool("power-require-deadline", false, "power: reject submissions without deadline_seconds (400) while power admission is active")
		powerTick    = fs.Duration("power-tick", 250*time.Millisecond, "power: envelope sampling period")

		leaseTTL   = fs.Duration("lease-ttl", 15*time.Second, "fleet: how long a granted sweep cell stays valid between heartbeat renewals")
		agentTTL   = fs.Duration("agent-ttl", 10*time.Second, "fleet: how long an agent may miss heartbeats before it is reaped and its cells requeued")
		fleetRetry = fs.Int("fleet-retry-limit", 3, "fleet: involuntary requeues per cell before it is abandoned")
		fleetBack  = fs.Duration("fleet-backoff", time.Second, "fleet: base of the exponential full-jitter requeue backoff")
		fleetCap   = fs.Duration("fleet-backoff-cap", time.Minute, "fleet: cap on the pre-jitter requeue backoff")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(stderr, "zccd", obs.BuildInfo())
		return nil
	}

	var logger *obs.Logger
	if !*quiet {
		lv, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		format, err := obs.ParseLogFormat(*logFormat)
		if err != nil {
			return err
		}
		logger = obs.NewLogger(stderr, lv, format)
	}

	powerCfg, err := buildPowerConfig(powerFlags{
		trace: *powerTrace, model: *powerModel, site: *powerSite, minMW: *powerMinMW,
		policy: *powerPolicy, horizon: *powerHorizon, speed: *powerSpeed,
		predict: *powerPredict, safety: *powerSafety, guard: *powerGuard,
		requireDeadline: *powerNeedDL,
	})
	if err != nil {
		return err
	}
	if powerCfg.Envelope != nil {
		logger.Info("power admission enabled", "trace", *powerTrace,
			"windows", len(powerCfg.Envelope.Windows()), "policy", string(powerCfg.Policy),
			"predict", *powerPredict, "horizon_s", *powerHorizon, "speed", *powerSpeed)
	}

	srv, err := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		RunTimeout:     *runTimeout,
		DataDir:        *dataDir,
		Log:            logger,
		SampleInterval: *sampleEvery,
		SampleWindow:   *sampleKeep,
		Power:          powerCfg,
		PowerTick:      *powerTick,
		Fleet: fleet.Config{
			LeaseTTL:   *leaseTTL,
			AgentTTL:   *agentTTL,
			RetryLimit: *fleetRetry,
			Backoff:    *fleetBack,
			BackoffCap: *fleetCap,
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Info("serving", "addr", ln.Addr().String(), "workers", *workers, "queue", *queue)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case sig := <-sigc:
		logger.Info("draining", "signal", sig.String())
	case <-func() <-chan struct{} {
		if stop != nil {
			return stop
		}
		return make(chan struct{}) // never fires
	}():
		logger.Info("draining", "signal", "stop requested")
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	// Drain order matters: runs first — the API stays up so clients can
	// watch their runs settle — then the HTTP server.
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), *drainGrace)
	defer cancelGrace()
	drainErr := srv.Drain(graceCtx)

	shutCtx, cancelShut := context.WithTimeout(context.Background(), *httpTimeout)
	defer cancelShut()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		httpSrv.Close()
		if drainErr == nil {
			drainErr = fmt.Errorf("http shutdown: %w", err)
		}
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		return drainErr
	}
	logger.Info("drained; exiting")
	return nil
}

// powerFlags collects the -power-* flags for buildPowerConfig.
type powerFlags struct {
	trace, model, policy, predict string
	site                          int
	minMW, horizon, speed, safety float64
	guard                         time.Duration
	requireDeadline               bool
}

// buildPowerConfig loads the stranded-power schedule and assembles the
// renewable-aware admission config. An empty -power-trace disables
// power admission entirely (zero Config).
func buildPowerConfig(pf powerFlags) (admit.Config, error) {
	if pf.trace == "" {
		return admit.Config{}, nil
	}
	model, err := admit.ParseModel(pf.model)
	if err != nil {
		return admit.Config{}, err
	}
	wins, err := admit.LoadSchedule(pf.trace, admit.LoadOptions{Model: model, Site: pf.site, MinMW: pf.minMW})
	if err != nil {
		return admit.Config{}, err
	}
	if len(wins) == 0 {
		return admit.Config{}, fmt.Errorf("power trace %s yields no stranded-power windows", pf.trace)
	}
	pred, err := buildPredictor(pf.predict, wins)
	if err != nil {
		return admit.Config{}, err
	}
	pol, err := admit.ParsePolicy(pf.policy)
	if err != nil {
		return admit.Config{}, err
	}
	env, err := admit.NewEnvelope(wins, sim.Duration(pf.horizon), pred)
	if err != nil {
		return admit.Config{}, err
	}
	return admit.Config{
		Envelope:        env,
		Clock:           admit.Clock{Speed: pf.speed},
		Policy:          pol,
		Safety:          pf.safety,
		Guard:           pf.guard,
		RequireDeadline: pf.requireDeadline,
	}, nil
}

// buildPredictor parses -power-predict: "oracle" trusts scheduled
// window ends, "median"/"p<NN>" train a hazard predictor on the
// schedule's own window lengths, "fixed:<seconds>" predicts a constant
// duration (the knob soak tests use to inject forecast error).
func buildPredictor(spec string, wins []admit.Window) (admit.Predictor, error) {
	switch {
	case spec == "" || spec == "oracle":
		return nil, nil
	case spec == "median":
		return forecast.Median(admit.Durations(wins))
	case strings.HasPrefix(spec, "p"):
		pct, err := strconv.Atoi(spec[1:])
		if err != nil || pct <= 0 || pct >= 100 {
			return nil, fmt.Errorf("power predictor %q: want p<1..99>", spec)
		}
		return forecast.NewHazard(admit.Durations(wins), float64(pct)/100)
	case strings.HasPrefix(spec, "fixed:"):
		sec, err := strconv.ParseFloat(spec[len("fixed:"):], 64)
		if err != nil || sec <= 0 {
			return nil, fmt.Errorf("power predictor %q: want fixed:<seconds>", spec)
		}
		return forecast.Fixed{Duration: sim.Duration(sec)}, nil
	}
	return nil, fmt.Errorf("power predictor %q: want oracle, median, p<NN>, or fixed:<seconds>", spec)
}
