// Command misogen synthesizes a MISO-like real-time market dataset —
// per wind site, per 5-minute interval: LMP, delivered MW, economic max —
// and writes it as CSV.
//
// Examples:
//
//	misogen -days 30 -sites 50 -o market.csv
//	misogen -days 834 -sites 200 -o full.csv     # paper-scale (≈9 GB)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"zccloud"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "random seed")
		days     = flag.Float64("days", 30, "dataset span in days (paper: 834)")
		sites    = flag.Int("sites", 50, "renewable generation sites (paper: 200)")
		scenario = flag.String("scenario", "miso", "grid scenario: miso (wind) or caiso (solar)")
		out      = flag.String("o", "-", "output file (\"-\" for stdout)")
	)
	flag.Parse()

	gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
		Seed:      *seed,
		Days:      *days,
		WindSites: *sites,
		Scenario:  zccloud.MarketScenario(*scenario),
	})
	if err != nil {
		fatal("%v", err)
	}

	// The CSV lands atomically: an interrupted run leaves no truncated
	// dataset behind.
	var w io.Writer = os.Stdout
	var af *zccloud.AtomicFile
	if *out != "-" {
		var err error
		af, err = zccloud.CreateAtomic(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer af.Abort() // no-op once committed
		w = af
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	rows, err := zccloud.WriteMarketCSV(gen, bw)
	if err != nil {
		fatal("writing: %v", err)
	}
	if err := bw.Flush(); err != nil {
		fatal("flushing: %v", err)
	}
	if af != nil {
		if err := af.Commit(); err != nil {
			fatal("%v", err)
		}
	}

	s := gen.Summary()
	fmt.Fprintf(os.Stderr,
		"wrote %d records: %d sites (%d wind), %.0f total GWh, %.0f wind GWh (%.1f%%), %.1f GWh wind curtailed\n",
		rows, s.Sites, s.WindSites, s.TotalGWh, s.WindGWh, 100*s.WindGWh/s.TotalGWh, s.WindCurtailedGWh)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "misogen: "+format+"\n", args...)
	os.Exit(1)
}
