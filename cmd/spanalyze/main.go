// Command spanalyze runs the paper's stranded-power analysis (Section V)
// over a market dataset: per-site duty factors and stranded MW under the
// LMP[x] and NetPrice[x] models, multi-site cumulative duty factors, and
// the Top500 comparison.
//
// It reads a CSV written by misogen, or synthesizes a dataset in-process:
//
//	spanalyze -input market.csv -sites 50
//	spanalyze -synth -days 120 -sites 100 -threshold 0
package main

import (
	"flag"
	"fmt"
	"os"

	"zccloud"
)

func main() {
	var (
		input     = flag.String("input", "", "market CSV from misogen (empty with -synth)")
		synth     = flag.Bool("synth", false, "synthesize the dataset in-process instead of reading CSV")
		seed      = flag.Int64("seed", 1, "seed for -synth")
		days      = flag.Float64("days", 120, "dataset span for -synth")
		sites     = flag.Int("sites", 50, "number of renewable sites")
		scenario  = flag.String("scenario", "miso", "grid scenario for -synth: miso (wind) or caiso (solar)")
		threshold = flag.Float64("threshold", 0, "price threshold x in $/MWh for LMP[x] and NetPrice[x]")
		minMW     = flag.Float64("min-mw", 0, "minimum offered MW for SP to count (use ~1 for solar)")
		topN      = flag.Int("top", 10, "how many top sites to print")
	)
	flag.Parse()
	if !*synth && *input == "" {
		fatal("need -input FILE or -synth")
	}

	models := []zccloud.SPModel{
		{Kind: zccloud.LMP, Threshold: *threshold},
		{Kind: zccloud.NetPrice, Threshold: *threshold},
	}
	analyses := make([]*zccloud.SPAnalysis, len(models))
	for i, m := range models {
		analyses[i] = zccloud.NewSPAnalysisMin(m, *sites, *minMW)
	}

	var observed int64
	if *synth {
		gen, err := zccloud.NewMarketDataset(zccloud.MarketConfig{
			Seed: *seed, Days: *days, WindSites: *sites,
			Scenario: zccloud.MarketScenario(*scenario),
		})
		if err != nil {
			fatal("%v", err)
		}
		var buf []zccloud.MarketRecord
		for {
			var ok bool
			buf, ok = gen.Next(buf)
			if !ok {
				break
			}
			for _, r := range buf {
				for _, a := range analyses {
					a.Observe(r)
				}
			}
			observed++
		}
	} else {
		f, err := os.Open(*input)
		if err != nil {
			fatal("opening market CSV: %v", err)
		}
		defer f.Close()
		maxIv := int64(-1)
		err = zccloud.ReadMarketCSVFile(*input, f, func(r zccloud.MarketRecord) error {
			if int(r.Site) >= *sites {
				return fmt.Errorf("record site %d >= -sites %d", r.Site, *sites)
			}
			for _, a := range analyses {
				a.Observe(r)
			}
			if r.Interval > maxIv {
				maxIv = r.Interval
			}
			return nil
		})
		if err != nil {
			fatal("%v", err)
		}
		observed = maxIv + 1
	}

	for i, m := range models {
		res := analyses[i].Results()
		fmt.Printf("\n=== %s ===\n", m)
		fmt.Printf("%4s  %6s  %10s  %10s  %10s\n", "rank", "site", "duty", "avg SP MW", "intervals")
		n := *topN
		if n > len(res) {
			n = len(res)
		}
		for k := 0; k < n; k++ {
			st := res[k]
			fmt.Printf("%4d  %6d  %9.1f%%  %10.1f  %10d\n",
				k+1, st.Site, 100*st.DutyFactor, st.AvgSPMW, len(st.Intervals))
		}
		cum := zccloud.CumulativeDutyFactor(res, observed)
		mw := zccloud.CumulativeAvgSPMW(res)
		fmt.Printf("cumulative duty factor: ")
		for _, k := range []int{1, 2, 3, 5, 7, 10} {
			if k <= len(cum) {
				fmt.Printf("%d:%.0f%% ", k, 100*cum[k-1])
			}
		}
		fmt.Printf("\ncumulative stranded MW: ")
		for _, k := range []int{1, 2, 3, 5, 7, 10} {
			if k <= len(mw) {
				fmt.Printf("%d:%.0fMW ", k, mw[k-1])
			}
		}
		fmt.Println()
		// Top500 coverage
		for _, rank := range []int{1, 10, 50, 250} {
			need := zccloud.Top500CumulativePowerMW(rank)
			covered := 0
			for i, v := range mw {
				if v >= need {
					covered = i + 1
					break
				}
			}
			if covered > 0 {
				fmt.Printf("Top %d systems (%.0f MW): %d sites\n", rank, need, covered)
			} else {
				fmt.Printf("Top %d systems (%.0f MW): not covered by %d sites\n", rank, need, len(mw))
			}
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "spanalyze: "+format+"\n", args...)
	os.Exit(1)
}
