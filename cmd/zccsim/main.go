// Command zccsim runs one Mira-ZCCloud scheduling simulation and prints
// the metrics the paper reports, followed by a telemetry summary.
//
// Examples:
//
//	zccsim -days 28                                # Mira only, 1xWorkload
//	zccsim -days 28 -zc-factor 1 -zc-duty 0.5      # + 1xMira ZCCloud @50%
//	zccsim -days 28 -zc-factor 2 -scale 1.5 -seed 7
//	zccsim -days 7 -trace t.jsonl -metrics m.json  # with event trace
//	zccsim -swf trace.swf                          # replay an SWF log
//	zccsim -days 7 -zc-factor 1 -kill-requeue -mtbf 24 -brownout 0.2
//	zccsim -days 28 -snapshot s.json -snapshot-at 7   # pause at day 7
//	zccsim -days 28 -restore s.json                   # ...and finish later
//
// A run is crash-safe: SIGINT/SIGTERM pauses it at the next event
// boundary and, when -snapshot is set, writes a checksummed snapshot that
// -restore resumes byte-identically. -check validates scheduler
// invariants after every event.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zccsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zccsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 42, "random seed")
		days     = fs.Float64("days", 28, "workload span in days")
		scale    = fs.Float64("scale", 1, "workload scale (the paper's NxWorkload)")
		burst    = fs.Bool("burst", false, "burst workload shape (2x node-hours during ZC uptime)")
		nodes    = fs.Int("mira-nodes", 49152, "base system size in nodes")
		zcFactor = fs.Float64("zc-factor", 0, "ZCCloud size as a multiple of Mira (0 = no ZCCloud)")
		zcDuty   = fs.Float64("zc-duty", 0.5, "ZCCloud periodic duty factor in (0,1]")
		zcPhase  = fs.Float64("zc-phase", 20, "daily hour the ZC window opens")
		killMode = fs.Bool("kill-requeue", false, "non-oracle mode: kill and resubmit jobs at window end")
		util     = fs.Float64("utilization", 0, "target base utilization (0 = Table I's 0.84)")
		swfPath  = fs.String("swf", "", "replay an SWF trace file instead of generating a workload")
		procsPer = fs.Int("procs-per-node", 16, "SWF processors per scheduler node (with -swf)")

		mtbf        = fs.Float64("mtbf", 0, "mean time between node failures in hours (0 = no failures)")
		faultSeed   = fs.Int64("fault-seed", 0, "fault injector seed (0 = derive from -seed)")
		brownout    = fs.Float64("brownout", 0, "per-window brownout probability in [0,1]")
		forecastErr = fs.Float64("forecast-err", 0, "window forecast-error standard deviation in hours")
		retryLimit  = fs.Int("retry-limit", 0, "kill/requeue retries before a job is abandoned (0 = unlimited)")
		backoff     = fs.Float64("backoff", 0, "base retry backoff in hours after a kill; doubles per retry (0 = requeue immediately)")
		backoffJit  = fs.Bool("backoff-jitter", false, "full-jitter retry backoff: delay is a seeded uniform draw from (0, base*2^k]")

		check   = fs.Bool("check", false, "validate scheduler invariants after every event")
		snapOut = fs.String("snapshot", "", "write a resume snapshot to this file when the run pauses")
		snapAt  = fs.Float64("snapshot-at", 0, "deterministically pause at this simulated day (requires -snapshot)")
		restore = fs.String("restore", "", "resume from a snapshot file (pass the original run's flags)")

		traceOut   = fs.String("trace", "", "write a simulation event trace to this file (.zct = binary columnar, .gz = gzipped JSONL, else JSONL)")
		httpAddr   = fs.String("http", "", "serve live /status, /metrics, and /debug/pprof on this address (e.g. 127.0.0.1:8080)")
		httpLinger = fs.Duration("http-linger", 0, "keep the -http server up this long after the run completes (Ctrl-C ends it early)")
		spans      = fs.Bool("spans", false, "time run phases (wall clock) and print a span summary")
		metricsOut = fs.String("metrics", "", "write a JSON metrics snapshot to this file")
		logLevel   = fs.String("log-level", "", "emit structured logs to stderr at this threshold: debug, info, warn, or error (empty = no logs)")
		logFormat  = fs.String("log-format", "logfmt", "structured log encoding: logfmt or json")
		runID      = fs.String("run-id", "", "correlation ID bound to every log line and stamped on every trace event")
		progress   = fs.Bool("progress", false, "report simulation progress and rate to stderr")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		version    = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *version {
		fmt.Fprintln(stdout, "zccsim", zccloud.BuildInfo())
		return nil
	}
	if *snapAt > 0 && *snapOut == "" {
		return fmt.Errorf("-snapshot-at needs -snapshot to name the snapshot file")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("creating CPU profile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// SIGINT/SIGTERM pause the simulation cooperatively: the flag is
	// polled between events, so the run always stops in a snapshottable
	// state.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sigc:
			interrupted.Store(true)
			fmt.Fprintln(stderr, "zccsim: interrupt received; pausing at the next event boundary")
		case <-done:
		}
	}()

	var zc zccloud.AvailabilityModel
	if *zcFactor > 0 {
		if *zcDuty >= 1 {
			zc = zccloud.AlwaysOn{}
		} else {
			zc = zccloud.NewPeriodic(*zcDuty, zccloud.Time(*zcPhase)*zccloud.Hour)
		}
	}

	// A restored run takes its jobs from the snapshot; only a fresh run
	// needs a workload.
	var tr *zccloud.Trace
	if *restore == "" {
		if *swfPath != "" {
			f, err := os.Open(*swfPath)
			if err != nil {
				return fmt.Errorf("opening SWF trace: %w", err)
			}
			var header zccloud.SWFHeader
			var skipped zccloud.SWFSkipReport
			tr, header, skipped, err = zccloud.ParseSWF(f, zccloud.SWFOptions{
				ProcsPerNode: *procsPer,
				SkipFailed:   true,
				File:         *swfPath,
			})
			f.Close()
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "replaying %s: %d jobs (%d skipped)", *swfPath, len(tr.Jobs), skipped.Count)
			if mn := header.MaxNodes(); mn > 0 {
				fmt.Fprintf(stdout, ", trace machine %d nodes", mn)
			}
			fmt.Fprintln(stdout)
			for _, s := range skipped.Samples {
				fmt.Fprintf(stdout, "  skipped %s\n", s)
			}
			if more := skipped.Count - len(skipped.Samples); more > 0 && len(skipped.Samples) > 0 {
				fmt.Fprintf(stdout, "  ... and %d more\n", more)
			}
		} else {
			wcfg := zccloud.WorkloadConfig{
				Seed:              *seed,
				Days:              *days,
				SystemNodes:       *nodes,
				TargetUtilization: *util,
				Scale:             *scale,
			}
			if *burst {
				if zc == nil {
					return fmt.Errorf("-burst requires -zc-factor > 0")
				}
				wcfg.Shape = zccloud.Burst
				horizon := zccloud.Time(*days) * zccloud.Day
				wcfg.UptimeWindows = materialize(zc, horizon)
			}
			var err error
			tr, err = zccloud.GenerateWorkload(wcfg)
			if err != nil {
				return fmt.Errorf("generating workload: %v", err)
			}
		}
		st := zccloud.SummarizeWorkload(tr, *nodes)
		fmt.Fprintf(stdout, "workload: %d jobs over %.0f days, %.0f M node-hours (%.1f%% of Mira)\n",
			st.Jobs, st.Days, st.NodeHours/1e6, 100*st.Utilization)
	}

	obsOpt := zccloud.ObsOptions{
		Metrics:   zccloud.NewMetricsRegistry(),
		Interrupt: interrupted.Load,
		Check:     *check,
		RunID:     *runID,
	}
	if *logLevel != "" {
		lv, err := zccloud.ParseLogLevel(*logLevel)
		if err != nil {
			return err
		}
		format, err := zccloud.ParseLogFormat(*logFormat)
		if err != nil {
			return err
		}
		obsOpt.Log = zccloud.NewLogger(stderr, lv, format)
	}
	if *spans || *httpAddr != "" {
		obsOpt.Timings = zccloud.NewSpanTimings()
	}
	var intro *zccloud.Introspection
	if *httpAddr != "" {
		obsOpt.Status = zccloud.NewRunStatus()
		obsOpt.Status.SetPhase("setup")
		ts := zccloud.NewTimeSeries(time.Second, 600,
			zccloud.SampleStatus(obsOpt.Status, obsOpt.Metrics))
		ts.Start()
		defer ts.Stop()
		in, err := zccloud.StartIntrospection(*httpAddr, obsOpt.Metrics, obsOpt.Status, obsOpt.Timings, ts)
		if err != nil {
			return fmt.Errorf("starting introspection server: %w", err)
		}
		intro = in
		// Graceful shutdown: let in-flight scrapes finish (bounded),
		// then close. Ctrl-C during -http-linger lands here too.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := intro.Shutdown(ctx); err != nil {
				fmt.Fprintf(stderr, "zccsim: introspection shutdown: %v\n", err)
			}
		}()
		fmt.Fprintf(stderr, "zccsim: introspection server on http://%s\n", intro.Addr())
	}
	var traceFile zccloud.TraceSink
	if *traceOut != "" {
		tf, err := zccloud.CreateTraceSink(*traceOut)
		if err != nil {
			return fmt.Errorf("creating trace output: %w", err)
		}
		defer tf.Abort() // no-op once committed
		traceFile = tf
		obsOpt.Tracer = tf
	}
	// commitTrace lands the event trace atomically; called on success and
	// on a deliberate pause, so a partial trace is still a usable prefix.
	commitTrace := func() error {
		if traceFile == nil {
			return nil
		}
		t := traceFile
		traceFile = nil
		if err := t.Commit(); err != nil {
			return fmt.Errorf("writing trace: %v", err)
		}
		return nil
	}
	if *progress {
		obsOpt.Progress = zccloud.NewProgressReporter(stderr, 5*time.Second)
		obsOpt.Progress.Phase("sim")
	}

	// Fault injection: any fault flag arms the injector. Failures target
	// the ZC partition when one exists, the base system otherwise.
	var fc *zccloud.FaultConfig
	if *mtbf > 0 || *brownout > 0 || *forecastErr > 0 || *retryLimit > 0 || *backoff > 0 {
		fc = &zccloud.FaultConfig{
			Seed:          *faultSeed,
			ForecastErrSD: zccloud.Time(*forecastErr) * zccloud.Hour,
			BrownoutProb:  *brownout,
			RetryLimit:    *retryLimit,
			Backoff:       zccloud.Time(*backoff) * zccloud.Hour,
			BackoffJitter: *backoffJit,
		}
		if fc.Seed == 0 {
			fc.Seed = *seed + 1
		}
		if *mtbf > 0 {
			part := zccloud.MiraPartitionName
			if *zcFactor > 0 {
				part = zccloud.ZCPartitionName
			}
			per := *nodes / 64
			if per < 1 {
				per = 1
			}
			fc.Nodes = map[string]zccloud.NodeFailureConfig{
				part: {MTBF: zccloud.Time(*mtbf) * zccloud.Hour, NodesPerFailure: per},
			}
		}
	}

	runCfg := zccloud.RunConfig{
		Trace: tr,
		System: zccloud.SystemConfig{
			MiraNodes: *nodes,
			ZCFactor:  *zcFactor,
			ZCAvail:   zc,
			NonOracle: *killMode,
			Faults:    fc,
		},
		Obs:    obsOpt,
		StopAt: zccloud.Time(*snapAt) * zccloud.Day,
	}

	var m *zccloud.Metrics
	var err error
	if *restore != "" {
		snap, lerr := zccloud.LoadSnapshot(*restore)
		if lerr != nil {
			return lerr
		}
		fmt.Fprintf(stdout, "restored %s: resuming %d jobs to deadline %.1f days\n",
			*restore, len(snap.Jobs), float64(snap.Deadline)/float64(zccloud.Day))
		m, err = zccloud.ResumeSimulation(runCfg, snap)
	} else {
		m, err = zccloud.Simulate(runCfg)
	}
	if err != nil {
		var intr *zccloud.InterruptedRun
		if !errors.As(err, &intr) {
			return fmt.Errorf("simulating: %v", err)
		}
		if *snapOut == "" {
			return fmt.Errorf("run interrupted with no -snapshot path; simulation state was lost")
		}
		if serr := zccloud.SaveSnapshot(*snapOut, intr.Snapshot); serr != nil {
			return serr
		}
		if terr := commitTrace(); terr != nil {
			return terr
		}
		fmt.Fprintf(stderr, "zccsim: run paused; snapshot written to %s\n", *snapOut)
		fmt.Fprintf(stderr, "zccsim: resume with the same flags plus -restore %s\n", *snapOut)
		if *snapAt > 0 && !interrupted.Load() {
			return nil // a deliberate -snapshot-at pause is a success
		}
		return fmt.Errorf("interrupted")
	}

	fmt.Fprintf(stdout, "\ncompleted %d jobs (%d unfinished, %d unrunnable); makespan %.1f days\n",
		m.Completed, m.Unfinished, m.Unrunnable, m.MakespanDays)
	fmt.Fprintf(stdout, "avg wait %.2f h (p50 %.2f, p90 %.2f, max %.1f)\n",
		m.AvgWaitHrs, m.P50WaitHrs, m.P90WaitHrs, m.MaxWaitHrs)
	fmt.Fprintf(stdout, "capability jobs %.2f h, capacity jobs %.2f h\n",
		m.AvgWaitCapabilityHrs, m.AvgWaitCapacityHrs)
	if *zcFactor > 0 {
		fmt.Fprintf(stdout, "on-time %.2f h (%d jobs), late %.2f h (%d jobs)\n",
			m.AvgWaitOnTimeHrs, m.OnTimeJobs, m.AvgWaitLateHrs, m.LateJobs)
		fmt.Fprintf(stdout, "ZCCloud carried %.1f%% of delivered node-hours\n", 100*m.ZCShareOfWork)
	}
	fmt.Fprintf(stdout, "throughput %.1f jobs/day\n", m.ThroughputJobsPerDay)
	parts := make([]string, 0, len(m.UtilizationByPartition))
	for part := range m.UtilizationByPartition {
		parts = append(parts, part)
	}
	sort.Strings(parts)
	for _, part := range parts {
		fmt.Fprintf(stdout, "utilization[%s] = %.1f%%\n", part, 100*m.UtilizationByPartition[part])
	}
	if fc != nil {
		fmt.Fprintf(stdout, "faults: %d node failures, %d brownouts, %d kills, %d abandoned\n",
			m.NodeFailures, m.Brownouts, m.Killed, m.Abandoned)
		if m.BackingOff > 0 {
			fmt.Fprintf(stdout, "retry starvation: %d jobs still backing off at the horizon\n",
				m.BackingOff)
		}
	}
	fmt.Fprintln(stdout, "\nwait by job size:")
	for _, b := range m.AvgWaitBySize {
		if b.Jobs == 0 {
			continue
		}
		fmt.Fprintf(stdout, "  %12s nodes: %6d jobs, %8.2f h\n", b.Label, b.Jobs, b.AvgWaitHrs)
	}

	obsOpt.Status.SetPhase("done")
	snap := obsOpt.Metrics.Snapshot()
	fmt.Fprintln(stdout)
	fmt.Fprintln(stdout, zccloud.MetricsSummaryTable(snap).Text())
	if *spans {
		fmt.Fprintln(stdout, zccloud.SpanSummaryTable(obsOpt.Timings.Snapshot()).Text())
	}

	if err := commitTrace(); err != nil {
		return err
	}
	if *metricsOut != "" {
		f, err := zccloud.CreateAtomic(*metricsOut)
		if err != nil {
			return fmt.Errorf("creating metrics output: %w", err)
		}
		if err := snap.WriteJSON(f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return fmt.Errorf("creating heap profile: %w", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	// Hold the introspection server open so a scraper (or a human with a
	// browser) can still read the finished run's /status and /metrics.
	if intro != nil && *httpLinger > 0 {
		fmt.Fprintf(stderr, "zccsim: run complete; serving introspection for up to %s more (Ctrl-C to stop)\n", *httpLinger)
		deadline := time.Now().Add(*httpLinger)
		for time.Now().Before(deadline) && !interrupted.Load() {
			time.Sleep(50 * time.Millisecond)
		}
	}
	return nil
}

func materialize(m zccloud.AvailabilityModel, horizon zccloud.Time) []zccloud.Window {
	var out []zccloud.Window
	t := zccloud.Time(0)
	for t < horizon {
		w, ok := m.NextUp(t)
		if !ok || w.Start >= horizon {
			break
		}
		if w.End > horizon {
			w.End = horizon
		}
		out = append(out, w)
		t = w.End
	}
	return out
}
