// Command zccsim runs one Mira-ZCCloud scheduling simulation and prints
// the metrics the paper reports.
//
// Examples:
//
//	zccsim -days 28                                # Mira only, 1xWorkload
//	zccsim -days 28 -zc-factor 1 -zc-duty 0.5      # + 1xMira ZCCloud @50%
//	zccsim -days 28 -zc-factor 2 -scale 1.5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"zccloud"
)

func main() {
	var (
		seed     = flag.Int64("seed", 42, "random seed")
		days     = flag.Float64("days", 28, "workload span in days")
		scale    = flag.Float64("scale", 1, "workload scale (the paper's NxWorkload)")
		burst    = flag.Bool("burst", false, "burst workload shape (2x node-hours during ZC uptime)")
		nodes    = flag.Int("mira-nodes", 49152, "base system size in nodes")
		zcFactor = flag.Float64("zc-factor", 0, "ZCCloud size as a multiple of Mira (0 = no ZCCloud)")
		zcDuty   = flag.Float64("zc-duty", 0.5, "ZCCloud periodic duty factor in (0,1]")
		zcPhase  = flag.Float64("zc-phase", 20, "daily hour the ZC window opens")
		killMode = flag.Bool("kill-requeue", false, "non-oracle mode: kill and resubmit jobs at window end")
		util     = flag.Float64("utilization", 0, "target base utilization (0 = Table I's 0.84)")
		swfPath  = flag.String("trace", "", "replay an SWF trace file instead of generating a workload")
		procsPer = flag.Int("procs-per-node", 16, "SWF processors per scheduler node (with -trace)")
	)
	flag.Parse()

	var zc zccloud.AvailabilityModel
	if *zcFactor > 0 {
		if *zcDuty >= 1 {
			zc = zccloud.AlwaysOn{}
		} else {
			zc = zccloud.NewPeriodic(*zcDuty, zccloud.Time(*zcPhase)*zccloud.Hour)
		}
	}

	var tr *zccloud.Trace
	if *swfPath != "" {
		f, err := os.Open(*swfPath)
		if err != nil {
			fatal("%v", err)
		}
		var header zccloud.SWFHeader
		var skipped int
		tr, header, skipped, err = zccloud.ParseSWF(f, zccloud.SWFOptions{
			ProcsPerNode: *procsPer,
			SkipFailed:   true,
		})
		f.Close()
		if err != nil {
			fatal("parsing %s: %v", *swfPath, err)
		}
		fmt.Printf("replaying %s: %d jobs (%d skipped)", *swfPath, len(tr.Jobs), skipped)
		if mn := header.MaxNodes(); mn > 0 {
			fmt.Printf(", trace machine %d nodes", mn)
		}
		fmt.Println()
	} else {
		wcfg := zccloud.WorkloadConfig{
			Seed:              *seed,
			Days:              *days,
			SystemNodes:       *nodes,
			TargetUtilization: *util,
			Scale:             *scale,
		}
		if *burst {
			if zc == nil {
				fatal("-burst requires -zc-factor > 0")
			}
			wcfg.Shape = zccloud.Burst
			horizon := zccloud.Time(*days) * zccloud.Day
			wcfg.UptimeWindows = materialize(zc, horizon)
		}
		var err error
		tr, err = zccloud.GenerateWorkload(wcfg)
		if err != nil {
			fatal("generating workload: %v", err)
		}
	}
	st := zccloud.SummarizeWorkload(tr, *nodes)
	fmt.Printf("workload: %d jobs over %.0f days, %.0f M node-hours (%.1f%% of Mira)\n",
		st.Jobs, st.Days, st.NodeHours/1e6, 100*st.Utilization)

	m, err := zccloud.Simulate(zccloud.RunConfig{
		Trace: tr,
		System: zccloud.SystemConfig{
			MiraNodes: *nodes,
			ZCFactor:  *zcFactor,
			ZCAvail:   zc,
			NonOracle: *killMode,
		},
	})
	if err != nil {
		fatal("simulating: %v", err)
	}

	fmt.Printf("\ncompleted %d jobs (%d unfinished, %d unrunnable); makespan %.1f days\n",
		m.Completed, m.Unfinished, m.Unrunnable, m.MakespanDays)
	fmt.Printf("avg wait %.2f h (p50 %.2f, p90 %.2f, max %.1f)\n",
		m.AvgWaitHrs, m.P50WaitHrs, m.P90WaitHrs, m.MaxWaitHrs)
	fmt.Printf("capability jobs %.2f h, capacity jobs %.2f h\n",
		m.AvgWaitCapabilityHrs, m.AvgWaitCapacityHrs)
	if *zcFactor > 0 {
		fmt.Printf("on-time %.2f h (%d jobs), late %.2f h (%d jobs)\n",
			m.AvgWaitOnTimeHrs, m.OnTimeJobs, m.AvgWaitLateHrs, m.LateJobs)
		fmt.Printf("ZCCloud carried %.1f%% of delivered node-hours\n", 100*m.ZCShareOfWork)
	}
	fmt.Printf("throughput %.1f jobs/day\n", m.ThroughputJobsPerDay)
	for part, u := range m.UtilizationByPartition {
		fmt.Printf("utilization[%s] = %.1f%%\n", part, 100*u)
	}
	fmt.Println("\nwait by job size:")
	for _, b := range m.AvgWaitBySize {
		if b.Jobs == 0 {
			continue
		}
		fmt.Printf("  %12s nodes: %6d jobs, %8.2f h\n", b.Label, b.Jobs, b.AvgWaitHrs)
	}
}

func materialize(m zccloud.AvailabilityModel, horizon zccloud.Time) []zccloud.Window {
	var out []zccloud.Window
	t := zccloud.Time(0)
	for t < horizon {
		w, ok := m.NextUp(t)
		if !ok || w.Start >= horizon {
			break
		}
		if w.End > horizon {
			w.End = horizon
		}
		out = append(out, w)
		t = w.End
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "zccsim: "+format+"\n", args...)
	os.Exit(1)
}
