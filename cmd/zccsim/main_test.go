package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"zccloud"
)

func TestMaterialize(t *testing.T) {
	m := zccloud.NewPeriodic(0.5, 0) // up the first 12h of each day
	ws := materialize(m, 2*zccloud.Day)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 12*zccloud.Hour {
		t.Errorf("first window = %+v", ws[0])
	}
	if ws[1].Start != zccloud.Day {
		t.Errorf("second window starts %v", ws[1].Start)
	}
}

func TestMaterializeClipsHorizon(t *testing.T) {
	m := zccloud.AlwaysOn{}
	ws := materialize(m, 100)
	if len(ws) != 1 || ws[0].End != 100 {
		t.Fatalf("always-on should clip to horizon: %+v", ws)
	}
}

func TestRunVersion(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-version"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "zccsim ") {
		t.Errorf("-version output = %q", out.String())
	}
}

// TestRunTraceDeterminism checks two same-seed zccsim runs emit
// byte-identical traces and metrics snapshots.
func TestRunTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a small simulation twice")
	}
	dir := t.TempDir()
	args := []string{"-days", "7", "-mira-nodes", "4096",
		"-zc-factor", "1", "-kill-requeue"}
	runOnce := func(tag string) (traceData, metricsData []byte, text string) {
		tp := filepath.Join(dir, tag+".jsonl")
		mp := filepath.Join(dir, tag+".json")
		var out, errw bytes.Buffer
		a := append(append([]string{}, args...), "-trace", tp, "-metrics", mp)
		if err := run(a, &out, &errw); err != nil {
			t.Fatalf("run %s: %v", tag, err)
		}
		var err error
		traceData, err = os.ReadFile(tp)
		if err != nil {
			t.Fatal(err)
		}
		metricsData, err = os.ReadFile(mp)
		if err != nil {
			t.Fatal(err)
		}
		return traceData, metricsData, out.String()
	}
	t1, m1, text := runOnce("a")
	t2, m2, _ := runOnce("b")
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed traces differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("same-seed metrics snapshots differ")
	}
	if len(bytes.TrimSpace(t1)) == 0 {
		t.Fatal("trace is empty")
	}
	for i, line := range bytes.Split(bytes.TrimSpace(t1), []byte("\n")) {
		var rec map[string]any
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("trace line %d not JSON: %v", i+1, err)
		}
	}
	if !strings.Contains(text, "Telemetry summary") {
		t.Error("stdout missing telemetry summary table")
	}
	var snap map[string]any
	if err := json.Unmarshal(m1, &snap); err != nil {
		t.Fatalf("metrics snapshot not JSON: %v", err)
	}
}
