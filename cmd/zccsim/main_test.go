package main

import (
	"testing"

	"zccloud"
)

func TestMaterialize(t *testing.T) {
	m := zccloud.NewPeriodic(0.5, 0) // up the first 12h of each day
	ws := materialize(m, 2*zccloud.Day)
	if len(ws) != 2 {
		t.Fatalf("windows = %d, want 2", len(ws))
	}
	if ws[0].Start != 0 || ws[0].End != 12*zccloud.Hour {
		t.Errorf("first window = %+v", ws[0])
	}
	if ws[1].Start != zccloud.Day {
		t.Errorf("second window starts %v", ws[1].Start)
	}
}

func TestMaterializeClipsHorizon(t *testing.T) {
	m := zccloud.AlwaysOn{}
	ws := materialize(m, 100)
	if len(ws) != 1 || ws[0].End != 100 {
		t.Fatalf("always-on should clip to horizon: %+v", ws)
	}
}
