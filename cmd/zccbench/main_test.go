package main

import "testing"

func TestParseBenchLine(t *testing.T) {
	r, ok := ParseBenchLine("BenchmarkEndToEndEventsPerSec-8   \t       2\t  25333770 ns/op\t    467606 events/sec")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkEndToEndEventsPerSec-8" || r.Iterations != 2 {
		t.Errorf("bad name/iterations: %+v", r)
	}
	if r.NsPerOp != 25333770 {
		t.Errorf("bad ns/op: %v", r.NsPerOp)
	}
	if r.Metrics["events/sec"] != 467606 {
		t.Errorf("bad events/sec: %v", r.Metrics)
	}

	r, ok = ParseBenchLine("BenchmarkNopTracer \t1000000000\t 0.25 ns/op\t 0 B/op\t 0 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.NsPerOp != 0.25 || r.Metrics["B/op"] != 0 || r.Metrics["allocs/op"] != 0 {
		t.Errorf("bad benchmem parse: %+v", r)
	}

	for _, bad := range []string{
		"",
		"PASS",
		"ok  \tzccloud\t0.087s",
		"goos: linux",
		"Benchmark only three fields",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, ok := ParseBenchLine(bad); ok {
			t.Errorf("%q should not parse as a result", bad)
		}
	}
}
