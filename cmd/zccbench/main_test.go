package main

import (
	"strings"
	"testing"
)

func mkBaseline(results ...BenchResult) Baseline {
	return Baseline{Results: results}
}

func TestCompareNoRegression(t *testing.T) {
	base := mkBaseline(
		BenchResult{Name: "BenchmarkThroughput-8", NsPerOp: 100,
			Metrics: map[string]float64{"events/sec": 500000, "allocs/op": 1000}},
		BenchResult{Name: "BenchmarkNop-8", NsPerOp: 0.2,
			Metrics: map[string]float64{"allocs/op": 0}},
	)
	cur := mkBaseline(
		// -4 suffix: a different GOMAXPROCS must still line up.
		BenchResult{Name: "BenchmarkThroughput-4", NsPerOp: 110,
			Metrics: map[string]float64{"events/sec": 460000, "allocs/op": 1050}},
		BenchResult{Name: "BenchmarkNop-4", NsPerOp: 0.2,
			Metrics: map[string]float64{"allocs/op": 0}},
		// Extra benchmarks in the fresh run are informational, never a failure.
		BenchResult{Name: "BenchmarkNew-4", NsPerOp: 5},
	)
	rep := Compare(base, cur, 0.15, 0.10)
	if len(rep.Regressions) != 0 {
		t.Fatalf("unexpected regressions: %v", rep.Regressions)
	}
	if rep.Compared != 2 {
		t.Fatalf("compared = %d, want 2", rep.Compared)
	}
}

func TestCompareThroughputDrop(t *testing.T) {
	base := mkBaseline(BenchResult{Name: "BenchmarkThroughput",
		Metrics: map[string]float64{"events/sec": 500000}})
	cur := mkBaseline(BenchResult{Name: "BenchmarkThroughput",
		Metrics: map[string]float64{"events/sec": 400000}})
	rep := Compare(base, cur, 0.15, 0.10)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "events/sec") {
		t.Fatalf("want one events/sec regression, got %v", rep.Regressions)
	}
	// The same drop passes under a looser gate.
	if rep := Compare(base, cur, 0.25, 0.10); len(rep.Regressions) != 0 {
		t.Fatalf("25%% tolerance should absorb a 20%% drop: %v", rep.Regressions)
	}
}

func TestCompareAllocGates(t *testing.T) {
	base := mkBaseline(
		BenchResult{Name: "BenchmarkNop", Metrics: map[string]float64{"allocs/op": 0}},
		BenchResult{Name: "BenchmarkBusy", Metrics: map[string]float64{"allocs/op": 100}},
	)
	cur := mkBaseline(
		BenchResult{Name: "BenchmarkNop", Metrics: map[string]float64{"allocs/op": 1}},
		BenchResult{Name: "BenchmarkBusy", Metrics: map[string]float64{"allocs/op": 150}},
	)
	rep := Compare(base, cur, 0.15, 0.10)
	if len(rep.Regressions) != 2 {
		t.Fatalf("want zero-pin and growth regressions, got %v", rep.Regressions)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkBaseline(BenchResult{Name: "BenchmarkGone", NsPerOp: 1})
	rep := Compare(base, mkBaseline(), 0.15, 0.10)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0], "not in this run") {
		t.Fatalf("missing benchmark must fail the gate: %v", rep.Regressions)
	}
}

func TestIndexResultsAveragesRepeats(t *testing.T) {
	m := indexResults([]BenchResult{
		{Name: "BenchmarkX-8", NsPerOp: 100, Metrics: map[string]float64{"events/sec": 100}},
		{Name: "BenchmarkX-8", NsPerOp: 300, Metrics: map[string]float64{"events/sec": 300}},
	})
	r := m["BenchmarkX"]
	if r.NsPerOp != 200 || r.Metrics["events/sec"] != 200 {
		t.Fatalf("repeats not averaged: %+v", r)
	}
}

func TestBaseName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkFoo-8":        "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo-bar":      "BenchmarkFoo-bar",
		"BenchmarkEdge-case-16": "BenchmarkEdge-case",
	} {
		if got := baseName(in); got != want {
			t.Errorf("baseName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	r, ok := ParseBenchLine("BenchmarkEndToEndEventsPerSec-8   \t       2\t  25333770 ns/op\t    467606 events/sec")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkEndToEndEventsPerSec-8" || r.Iterations != 2 {
		t.Errorf("bad name/iterations: %+v", r)
	}
	if r.NsPerOp != 25333770 {
		t.Errorf("bad ns/op: %v", r.NsPerOp)
	}
	if r.Metrics["events/sec"] != 467606 {
		t.Errorf("bad events/sec: %v", r.Metrics)
	}

	r, ok = ParseBenchLine("BenchmarkNopTracer \t1000000000\t 0.25 ns/op\t 0 B/op\t 0 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.NsPerOp != 0.25 || r.Metrics["B/op"] != 0 || r.Metrics["allocs/op"] != 0 {
		t.Errorf("bad benchmem parse: %+v", r)
	}

	for _, bad := range []string{
		"",
		"PASS",
		"ok  \tzccloud\t0.087s",
		"goos: linux",
		"Benchmark only three fields",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, ok := ParseBenchLine(bad); ok {
			t.Errorf("%q should not parse as a result", bad)
		}
	}
}
