// Command zccbench runs the repository's benchmark suite and records a
// machine-readable performance baseline. It shells out to `go test
// -bench`, parses the standard benchmark output, and atomically writes a
// JSON file (default BENCH_PR4.json) with ns/op, allocations, and custom
// metrics such as the end-to-end events/sec throughput anchor — so a
// later run on the same machine can be diffed against the committed
// baseline.
//
// Examples:
//
//	zccbench                                  # default subset -> BENCH_PR4.json
//	zccbench -bench . -pkg ./...              # everything (slow)
//	zccbench -o /tmp/b.json -count 3
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"flag"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zccbench: %v\n", err)
		os.Exit(1)
	}
}

// defaultBench is the baseline subset: the end-to-end throughput anchor,
// the full-month scheduler run, the workload generator, and the tracer
// micro-benches (including the zero-alloc Nop check). Fast enough for CI
// while still covering every layer a perf regression could hide in.
const defaultBench = "EndToEndEventsPerSec|SchedulerMonth|WorkloadGeneration|NopTracer|JSONLTracer"

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout of BENCH_PR4.json.
type Baseline struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Bench     string        `json:"bench_pattern"`
	Packages  []string      `json:"packages"`
	Count     int           `json:"count"`
	Results   []BenchResult `json:"results"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zccbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out     = fs.String("o", "BENCH_PR4.json", "baseline output file")
		pattern = fs.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		pkgs    = fs.String("pkg", "zccloud,zccloud/internal/obs", "comma-separated packages to benchmark")
		count   = fs.Int("count", 1, "benchmark repetitions (go test -count)")
		goTool  = fs.String("go", "go", "go tool to invoke")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	pkgList := strings.Split(*pkgs, ",")
	cmdArgs := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem",
		"-count", strconv.Itoa(*count)}
	cmdArgs = append(cmdArgs, pkgList...)
	fmt.Fprintf(stderr, "zccbench: %s %s\n", *goTool, strings.Join(cmdArgs, " "))

	cmd := exec.Command(*goTool, cmdArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting go test: %w", err)
	}

	var results []BenchResult
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stderr, line) // mirror the live benchmark output
		if r, ok := ParseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	scanErr := sc.Err()
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go test -bench failed: %w", err)
	}
	if scanErr != nil {
		return scanErr
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *pattern)
	}

	b := Baseline{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *pattern,
		Packages:  pkgList,
		Count:     *count,
		Results:   results,
	}
	f, err := zccloud.CreateAtomic(*out)
	if err != nil {
		return fmt.Errorf("creating baseline file: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Abort()
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d result(s)\n", *out, len(results))
	return nil
}

// ParseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo-8   	     100	  11905 ns/op	 1632 B/op	 12 allocs/op	 420000 events/sec
//
// The first value pair is always ns/op; any further pairs land in
// Metrics keyed by their unit. Non-benchmark lines return ok=false.
func ParseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
