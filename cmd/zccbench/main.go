// Command zccbench runs the repository's benchmark suite and records a
// machine-readable performance baseline. It shells out to `go test
// -bench`, parses the standard benchmark output, and atomically writes a
// JSON file (default BENCH_PR4.json) with ns/op, allocations, and custom
// metrics such as the end-to-end events/sec throughput anchor — so a
// later run on the same machine can be diffed against the committed
// baseline.
//
// Examples:
//
//	zccbench                                  # default subset -> BENCH_PR4.json
//	zccbench -bench . -pkg ./...              # everything (slow)
//	zccbench -o /tmp/b.json -count 3
//	zccbench -compare BENCH_PR4.json          # rerun and gate on regression
//
// With -compare FILE the fresh results are diffed against the committed
// baseline instead of written out: an events/sec drop beyond -tolerance
// or an allocs/op growth beyond -alloc-tolerance (any allocation at all
// where the baseline pins zero) exits non-zero, so CI can gate merges on
// the perf anchor.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"flag"

	"zccloud"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "zccbench: %v\n", err)
		os.Exit(1)
	}
}

// defaultBench is the baseline subset: the end-to-end throughput anchor,
// the full-month scheduler run, the workload generator, the tracer
// micro-benches (including the zero-alloc Nop check), the trace
// encoders (JSONL vs binary columnar), and the power-admission decision
// (zero-alloc, sits on every submission's hot path). Fast enough for CI
// while still covering every layer a perf regression could hide in.
const defaultBench = "EndToEndEventsPerSec|SchedulerMonth|WorkloadGeneration|NopTracer|JSONLTracer|NopLogger|LogfmtLogger|TraceEncode|AdmitDecision"

// BenchResult is one parsed benchmark line.
type BenchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Baseline is the file layout of BENCH_PR4.json.
type Baseline struct {
	Generated string        `json:"generated"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Bench     string        `json:"bench_pattern"`
	Packages  []string      `json:"packages"`
	Count     int           `json:"count"`
	Results   []BenchResult `json:"results"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("zccbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out      = fs.String("o", "BENCH_PR4.json", "baseline output file")
		pattern  = fs.String("bench", defaultBench, "benchmark regex passed to go test -bench")
		pkgs     = fs.String("pkg", "zccloud,zccloud/internal/obs,zccloud/internal/tracebin,zccloud/internal/admit", "comma-separated packages to benchmark")
		count    = fs.Int("count", 1, "benchmark repetitions (go test -count)")
		goTool   = fs.String("go", "go", "go tool to invoke")
		compare  = fs.String("compare", "", "compare fresh results against this baseline file instead of writing one; exit non-zero on regression")
		tol      = fs.Float64("tolerance", 0.15, "with -compare: tolerated fractional throughput drop (events/sec)")
		allocTol = fs.Float64("alloc-tolerance", 0.10, "with -compare: tolerated fractional allocs/op growth (zero-alloc baselines tolerate none)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	pkgList := strings.Split(*pkgs, ",")
	cmdArgs := []string{"test", "-run", "^$", "-bench", *pattern, "-benchmem",
		"-count", strconv.Itoa(*count)}
	cmdArgs = append(cmdArgs, pkgList...)
	fmt.Fprintf(stderr, "zccbench: %s %s\n", *goTool, strings.Join(cmdArgs, " "))

	cmd := exec.Command(*goTool, cmdArgs...)
	cmd.Stderr = stderr
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting go test: %w", err)
	}

	var results []BenchResult
	sc := bufio.NewScanner(pipe)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(stderr, line) // mirror the live benchmark output
		if r, ok := ParseBenchLine(line); ok {
			results = append(results, r)
		}
	}
	scanErr := sc.Err()
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("go test -bench failed: %w", err)
	}
	if scanErr != nil {
		return scanErr
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results matched %q", *pattern)
	}

	b := Baseline{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Bench:     *pattern,
		Packages:  pkgList,
		Count:     *count,
		Results:   results,
	}
	if *compare != "" {
		raw, err := os.ReadFile(*compare)
		if err != nil {
			return fmt.Errorf("reading baseline: %w", err)
		}
		var base Baseline
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", *compare, err)
		}
		report := Compare(base, b, *tol, *allocTol)
		for _, l := range report.Lines {
			fmt.Fprintln(stdout, l)
		}
		if len(report.Regressions) > 0 {
			for _, r := range report.Regressions {
				fmt.Fprintln(stderr, "REGRESSION:", r)
			}
			return fmt.Errorf("%d regression(s) against %s", len(report.Regressions), *compare)
		}
		fmt.Fprintf(stdout, "no regressions against %s (%d benchmark(s) compared)\n",
			*compare, report.Compared)
		return nil
	}
	f, err := zccloud.CreateAtomic(*out)
	if err != nil {
		return fmt.Errorf("creating baseline file: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Abort()
		return err
	}
	if err := f.Commit(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: %d result(s)\n", *out, len(results))
	return nil
}

// CompareReport is the outcome of diffing a fresh run against a
// committed baseline.
type CompareReport struct {
	Compared    int      // benchmarks present in both runs
	Lines       []string // human-readable per-benchmark diff
	Regressions []string // tolerance violations; empty means pass
}

// Compare diffs cur against base. Only two signals gate: events/sec may
// not drop by more than tol (throughput anchors), and allocs/op may not
// grow by more than allocTol — with zero-alloc baselines treated as a
// hard pin, since any allocation there means an escape-analysis
// regression, not noise. ns/op is reported but never gates: wall-clock
// noise across machines would make it a flaky signal.
func Compare(base, cur Baseline, tol, allocTol float64) CompareReport {
	var rep CompareReport
	baseByName := indexResults(base.Results)
	curByName := indexResults(cur.Results)

	names := make([]string, 0, len(baseByName))
	for name := range baseByName {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		b := baseByName[name]
		c, ok := curByName[name]
		if !ok {
			rep.Regressions = append(rep.Regressions,
				fmt.Sprintf("%s: in baseline but not in this run", name))
			continue
		}
		rep.Compared++
		rep.Lines = append(rep.Lines, fmt.Sprintf("%-40s ns/op %12.1f -> %12.1f (%+.1f%%)",
			name, b.NsPerOp, c.NsPerOp, pctChange(b.NsPerOp, c.NsPerOp)))

		if bv, ok := b.Metrics["events/sec"]; ok {
			cv := c.Metrics["events/sec"]
			rep.Lines = append(rep.Lines, fmt.Sprintf("%-40s events/sec %9.0f -> %9.0f (%+.1f%%)",
				name, bv, cv, pctChange(bv, cv)))
			if cv < bv*(1-tol) {
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s: events/sec %.0f -> %.0f, drop beyond %.0f%% tolerance",
					name, bv, cv, tol*100))
			}
		}
		if bv, ok := b.Metrics["allocs/op"]; ok {
			cv := c.Metrics["allocs/op"]
			rep.Lines = append(rep.Lines, fmt.Sprintf("%-40s allocs/op %10.0f -> %10.0f",
				name, bv, cv))
			switch {
			case bv == 0 && cv > 0:
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s: allocs/op %.0f, baseline pins zero", name, cv))
			case bv > 0 && cv > bv*(1+allocTol):
				rep.Regressions = append(rep.Regressions, fmt.Sprintf(
					"%s: allocs/op %.0f -> %.0f, growth beyond %.0f%% tolerance",
					name, bv, cv, allocTol*100))
			}
		}
	}
	return rep
}

// indexResults keys results by GOMAXPROCS-stripped name, averaging
// repeated entries (-count > 1) so noise doesn't gate on a single worst
// iteration.
func indexResults(rs []BenchResult) map[string]BenchResult {
	sums := map[string]BenchResult{}
	n := map[string]int{}
	for _, r := range rs {
		name := baseName(r.Name)
		acc := sums[name]
		acc.Name = name
		acc.Iterations += r.Iterations
		acc.NsPerOp += r.NsPerOp
		if acc.Metrics == nil {
			acc.Metrics = map[string]float64{}
		}
		for k, v := range r.Metrics {
			acc.Metrics[k] += v
		}
		sums[name] = acc
		n[name]++
	}
	for name, acc := range sums {
		c := float64(n[name])
		acc.NsPerOp /= c
		for k := range acc.Metrics {
			acc.Metrics[k] /= c
		}
		sums[name] = acc
	}
	return sums
}

// baseName strips the -N GOMAXPROCS suffix go test appends, so runs on
// machines with different core counts still line up.
func baseName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func pctChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (to - from) / from * 100
}

// ParseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkFoo-8   	     100	  11905 ns/op	 1632 B/op	 12 allocs/op	 420000 events/sec
//
// The first value pair is always ns/op; any further pairs land in
// Metrics keyed by their unit. Non-benchmark lines return ok=false.
func ParseBenchLine(line string) (BenchResult, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	r := BenchResult{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
