// Package zccloud is a simulation toolkit for studying stranded-power
// high-performance computing, reproducing "ZCCloud: Exploring Wasted
// Green Power for High-Performance Computing" (Yang & Chien, IPPS 2016).
//
// The toolkit covers the paper's full pipeline:
//
//   - synthesize production-like HPC workloads calibrated to the ALCF
//     Mira trace (GenerateWorkload);
//   - simulate batch scheduling on a Mira-class system extended with an
//     intermittent ZCCloud partition (Simulate), under periodic or
//     trace-driven availability;
//   - synthesize a MISO-like real-time power market — wind field, radial
//     grid, merit-order dispatch with congestion — and stream its
//     cleared-offer records (NewMarketDataset);
//   - extract stranded-power intervals under the paper's LMP[x] and
//     NetPrice[x] models and derive duty factors (NewSPAnalysis);
//   - run every table and figure of the paper's evaluation
//     (RunExperiment, Experiments).
//
// The sub-packages live under internal/; this package is the supported
// surface. All randomness is seeded: identical inputs give identical
// outputs.
package zccloud

import (
	"context"

	"zccloud/internal/availability"
	"zccloud/internal/core"
	"zccloud/internal/econ"
	"zccloud/internal/experiments"
	"zccloud/internal/faults"
	"zccloud/internal/forecast"
	"zccloud/internal/job"
	"zccloud/internal/miso"
	"zccloud/internal/obs"
	"zccloud/internal/persist"
	"zccloud/internal/powergrid"
	"zccloud/internal/sched"
	"zccloud/internal/sim"
	"zccloud/internal/stranded"
	"zccloud/internal/swf"
	"zccloud/internal/top500"
	"zccloud/internal/tracebin"
	"zccloud/internal/traceview"
	"zccloud/internal/workload"
)

// Time is simulated time in seconds since the simulation epoch.
type Time = sim.Time

// Time unit constants.
const (
	Second = sim.Second
	Minute = sim.Minute
	Hour   = sim.Hour
	Day    = sim.Day
)

// Job is one batch job with its simulation outcome.
type Job = job.Job

// Trace is an ordered collection of jobs.
type Trace = job.Trace

// ReadTraceCSV reads a job trace written by Trace.WriteCSV.
var ReadTraceCSV = job.ReadCSV

// SWFOptions control Standard Workload Format parsing.
type SWFOptions = swf.Options

// SWFHeader carries the metadata directives of an SWF file.
type SWFHeader = swf.Header

// SWFParseError locates a malformed SWF line (file, line number).
type SWFParseError = swf.ParseError

// SWFSkipReport counts data lines ParseSWF dropped and keeps the first
// few with reasons.
type SWFSkipReport = swf.SkipReport

// ParseSWF reads a Parallel Workloads Archive trace (SWF) into a job
// trace, so real production logs can drive the simulator.
var ParseSWF = swf.Parse

// WriteSWF emits a trace in SWF form for other workload tools.
var WriteSWF = swf.Write

// WorkloadConfig controls synthetic workload generation (see Table I of
// the paper for the calibration targets).
type WorkloadConfig = workload.Config

// Workload shapes.
const (
	Uniform = workload.Uniform
	Burst   = workload.Burst
)

// GenerateWorkload synthesizes an ALCF-like job trace.
func GenerateWorkload(cfg WorkloadConfig) (*Trace, error) { return workload.Generate(cfg) }

// ScaleWorkload scales a trace's node-hours by factor >= 1 the way the
// paper builds its NxWorkload variants.
func ScaleWorkload(tr *Trace, factor float64, seed int64) (*Trace, error) {
	return workload.ScaleTrace(tr, factor, seed)
}

// WorkloadStats summarizes a trace against the Table I columns.
type WorkloadStats = workload.Stats

// SummarizeWorkload computes WorkloadStats against a base system size.
func SummarizeWorkload(tr *Trace, systemNodes int) WorkloadStats {
	return workload.Summarize(tr, systemNodes)
}

// AvailabilityModel answers when a partition has power.
type AvailabilityModel = availability.Model

// Window is a half-open availability interval.
type Window = availability.Window

// AlwaysOn is a partition that never loses power.
type AlwaysOn = availability.AlwaysOn

// Periodic is up for a fixed window every cycle (Section IV's model).
type Periodic = availability.Periodic

// NewPeriodic builds a daily periodic model from a duty factor in (0,1].
var NewPeriodic = availability.NewPeriodic

// IntervalTrace is availability given by explicit windows, e.g. stranded
// power intervals.
type IntervalTrace = availability.IntervalTrace

// NewIntervalTrace normalizes windows into a trace model.
var NewIntervalTrace = availability.NewIntervalTrace

// UnionAvailability returns the union of several models over a range —
// the availability of a multi-site ZCCloud.
var UnionAvailability = availability.Union

// MeasureDutyFactor returns the fraction of [from, to) a model is up.
var MeasureDutyFactor = availability.DutyFactor

// Partition names used by Simulate's machines.
const (
	MiraPartitionName = core.MiraPartition
	ZCPartitionName   = core.ZCPartition
)

// SystemConfig describes a Mira-ZCCloud deployment.
type SystemConfig = core.SystemConfig

// FaultConfig configures fault injection: stochastic node failures,
// availability forecast error, brownouts, and the recovery policy
// (requeue order, bounded retries with backoff). Attach one to
// SystemConfig.Faults; a config with no active dimension leaves the run
// identical to a fault-free one.
type FaultConfig = faults.Config

// NodeFailureConfig is one partition's failure process: MTBF (exponential
// draws, or Weibull when a shape is set), mean repair time, and nodes
// taken down per failure.
type NodeFailureConfig = faults.NodeFailures

// Requeue policies for killed jobs.
const (
	RequeueFront = faults.RequeueFront
	RequeueBack  = faults.RequeueBack
)

// FaultInjector holds validated fault schedules; same seed, same faults.
type FaultInjector = faults.Injector

// NewFaultInjector validates a FaultConfig and builds an injector.
var NewFaultInjector = faults.New

// YoungDalyInterval returns the Young/Daly optimal checkpoint interval
// √(2·δ·MTBF) for checkpoint overhead δ.
var YoungDalyInterval = faults.YoungDaly

// RunConfig is one scheduling simulation.
type RunConfig = core.RunConfig

// Metrics is the simulation outcome the paper's figures read.
type Metrics = core.Metrics

// Simulate runs one Mira-ZCCloud scheduling simulation.
func Simulate(cfg RunConfig) (*Metrics, error) { return core.Run(cfg) }

// SimulateContext is Simulate under a context: cancellation stops the
// run at an event boundary (within one poll stride) and returns an
// *InterruptedRun carrying a snapshot, exactly as an Interrupt hook
// would. A background context costs nothing over Simulate.
func SimulateContext(ctx context.Context, cfg RunConfig) (*Metrics, error) {
	return core.RunContext(ctx, cfg)
}

// Crash safety: a run stopped by RunConfig.StopAt or ObsOptions.Interrupt
// returns an *InterruptedRun error carrying a RunSnapshot; ResumeSimulation
// continues it — under the same system configuration — to results
// byte-identical with an uninterrupted run.

// RunSnapshot is a versioned, checksummed capture of a paused simulation:
// engine clock and counters, queue, running set, partition pools, fault
// state, and every pending event in deterministic order.
type RunSnapshot = sched.Snapshot

// SnapshotVersion is the current RunSnapshot layout version; restore
// refuses snapshots written by any other version.
const SnapshotVersion = sched.SnapshotVersion

// InterruptedRun reports a simulation stopped at a safe boundary; it
// unwraps to ErrRunInterrupted and carries the snapshot to resume from.
type InterruptedRun = core.Interrupted

// ErrRunInterrupted is the sentinel under every interrupted-run error.
var ErrRunInterrupted = sched.ErrInterrupted

// ResumeSimulation continues a simulation from a snapshot. The config
// must describe the same system that produced the snapshot (its workload
// trace is ignored — jobs live in the snapshot); a mismatch is refused.
func ResumeSimulation(cfg RunConfig, snap *RunSnapshot) (*Metrics, error) {
	return core.Resume(cfg, snap)
}

// ResumeSimulationContext is ResumeSimulation under a context; see
// SimulateContext for the cancellation contract.
func ResumeSimulationContext(ctx context.Context, cfg RunConfig, snap *RunSnapshot) (*Metrics, error) {
	return core.ResumeContext(ctx, cfg, snap)
}

// snapshotFileKind tags RunSnapshot files written by SaveSnapshot.
const snapshotFileKind = "zccloud-snapshot"

// SaveSnapshot writes a RunSnapshot to path atomically, wrapped in a
// checksummed, versioned envelope.
func SaveSnapshot(path string, snap *RunSnapshot) error {
	return persist.SaveJSON(path, snapshotFileKind, SnapshotVersion, snap)
}

// LoadSnapshot reads a RunSnapshot written by SaveSnapshot, verifying
// kind, version, and checksum.
func LoadSnapshot(path string) (*RunSnapshot, error) {
	snap := new(RunSnapshot)
	if err := persist.LoadJSON(path, snapshotFileKind, SnapshotVersion, snap); err != nil {
		return nil, err
	}
	return snap, nil
}

// InvariantViolation is a detected scheduler-state inconsistency; the
// invariant checker (ObsOptions.Check) returns one as the run error.
type InvariantViolation = sched.InvariantViolation

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsync, and rename, so readers never observe a torn file.
var WriteFileAtomic = persist.WriteFileAtomic

// AtomicFile is an open file that reaches its destination only on
// Commit; Abort (or a crash) leaves any previous content intact.
type AtomicFile = persist.File

// CreateAtomic opens an AtomicFile that will atomically replace path.
var CreateAtomic = persist.CreateAtomic

// Resumable experiment sweeps: RunSweep journals one record per
// experiment cell under a panic guard and watchdog, and resumes a run
// directory by skipping completed cells.

// SweepConfig configures a resumable experiment sweep.
type SweepConfig = experiments.SweepConfig

// SweepResult summarizes a sweep invocation.
type SweepResult = experiments.SweepResult

// SweepCellRecord is one journaled cell outcome.
type SweepCellRecord = experiments.CellRecord

// Sweep cell statuses.
const (
	SweepCellOK      = experiments.CellOK
	SweepCellError   = experiments.CellError
	SweepCellPanic   = experiments.CellPanic
	SweepCellTimeout = experiments.CellTimeout
	SweepCellWedged  = experiments.CellWedged
)

// RunSweep runs experiments into a journaled run directory.
var RunSweep = experiments.RunSweep

// SweepStatus summarizes a run directory's journal without running
// anything.
var SweepStatus = experiments.SweepStatus

// ErrSweepInterrupted reports a sweep stopped by its Interrupt hook; the
// run directory stays resumable.
var ErrSweepInterrupted = experiments.ErrSweepInterrupted

// MarketConfig controls synthetic market-dataset generation (Table III).
type MarketConfig = miso.Config

// MarketScenario selects the grid and renewable mix.
type MarketScenario = miso.Scenario

// Market scenarios.
const (
	MISOScenario  = miso.ScenarioMISO  // wind-dominated Midwest (the paper)
	CAISOScenario = miso.ScenarioCAISO // solar-dominated California (future work)
)

// GenKind distinguishes generator technologies.
type GenKind = powergrid.GenType

// Generator kinds.
const (
	WindKind  = powergrid.Wind
	SolarKind = powergrid.Solar
)

// MarketRecord is one wind site's 5-minute cleared-offer row (Table IV).
type MarketRecord = miso.Record

// MarketDataset streams a synthetic MISO-like dataset.
type MarketDataset = miso.Generator

// NewMarketDataset builds the coupled wind–grid–market system.
func NewMarketDataset(cfg MarketConfig) (*MarketDataset, error) { return miso.NewGenerator(cfg) }

// WriteMarketCSV streams an entire dataset to a writer as CSV.
var WriteMarketCSV = miso.WriteCSV

// ReadMarketCSV streams records from a CSV (plain or gzipped),
// invoking fn per record, in bounded memory.
var ReadMarketCSV = miso.ReadCSV

// ReadAllMarketCSV materializes an entire record stream; a thin wrapper
// over the streaming ReadMarketCSV.
var ReadAllMarketCSV = miso.ReadAllCSV

// ReadMarketCSVFile is ReadMarketCSV with an input name carried into
// errors.
var ReadMarketCSVFile = miso.ReadCSVFile

// MarketParseError locates a malformed market-CSV line.
type MarketParseError = miso.ParseError

// SPModel is one stranded-power definition (Table V).
type SPModel = stranded.Model

// SP model kinds.
const (
	LMP      = stranded.LMP
	NetPrice = stranded.NetPrice
)

// PaperSPModels are the four models the paper evaluates: LMP0, LMP5,
// NetPrice0, NetPrice5.
var PaperSPModels = stranded.PaperModels

// SPInterval is one stranded-power interval.
type SPInterval = stranded.Interval

// SPSiteStats are per-site stranded power metrics (Section V).
type SPSiteStats = stranded.SiteStats

// SPAnalysis extracts stranded-power intervals for every site of a
// dataset under one model.
type SPAnalysis = stranded.Analysis

// NewSPAnalysis creates per-site analyzers for nSites sites.
func NewSPAnalysis(model SPModel, nSites int) *SPAnalysis { return stranded.NewAnalysis(model, nSites) }

// NewSPAnalysisMin creates analyzers that additionally require minMW of
// offered power for SP to count (needed for solar sites, whose prices can
// stay negative after sundown).
func NewSPAnalysisMin(model SPModel, nSites int, minMW float64) *SPAnalysis {
	return stranded.NewAnalysisMin(model, nSites, minMW)
}

// SPWindows converts SP intervals to availability windows.
var SPWindows = stranded.Windows

// CumulativeDutyFactor returns top-N-site union duty factors (Figure 11).
var CumulativeDutyFactor = stranded.CumulativeDutyFactor

// CumulativeAvgSPMW returns top-N-site summed stranded MW (Figure 12).
var CumulativeAvgSPMW = stranded.CumulativeAvgSPMW

// Top500PowerMW returns the modeled power draw of the 2015 Top500 system
// at a 1-based rank (Figure 12's comparison line).
var Top500PowerMW = top500.PowerMW

// Top500CumulativePowerMW returns the summed power of ranks 1..k.
var Top500CumulativePowerMW = top500.CumulativePowerMW

// WindowPredictor estimates availability-window ends for predictive
// scheduling.
type WindowPredictor = sched.WindowPredictor

// FixedWindowPredictor assumes every window lasts a fixed duration.
type FixedWindowPredictor = forecast.Fixed

// HazardPredictor predicts window ends conditioned on window age from an
// empirical duration sample — the fix for fixed-horizon predictors'
// stale-window throttling on heavy-tailed stranded power.
type HazardPredictor = forecast.Hazard

// NewHazardPredictor builds a hazard predictor at the given optimism
// quantile in (0,1).
var NewHazardPredictor = forecast.NewHazard

// EconParams are the cost-model inputs for stranded-power computing
// economics (paper Section VIII future work).
type EconParams = econ.Params

// DefaultEconParams returns 2015-era new-hardware cost assumptions.
var DefaultEconParams = econ.DefaultParams

// RecycledEconParams returns the second-life-hardware scenario.
var RecycledEconParams = econ.RecycledParams

// Deployment kinds for the cost model.
const (
	TraditionalDeployment = econ.Traditional
	ContainerDeployment   = econ.Container
)

// ExperimentOptions scales the experiment suite; the zero value is the
// paper's configuration.
type ExperimentOptions = experiments.Options

// QuickOptions is a reduced preset for fast runs.
var QuickOptions = experiments.Quick

// Lab shares expensive artifacts across experiments.
type Lab = experiments.Lab

// NewLab creates a Lab.
var NewLab = experiments.NewLab

// ResultTable is one experiment's output.
type ResultTable = experiments.Table

// Experiment is one runnable paper artifact.
type Experiment = experiments.Experiment

// Experiments lists every paper table/figure plus the extensions.
var Experiments = experiments.All

// RunExperiment runs one experiment by id ("fig5", "table6", ...).
func RunExperiment(id string, lab *Lab) (*ResultTable, error) {
	e, err := experiments.ByID(id)
	if err != nil {
		return nil, err
	}
	return e.Run(lab)
}

// Telemetry (internal/obs): every simulation accepts an ObsOptions with a
// Tracer (typed scheduler-decision events), a MetricsRegistry (counters,
// gauges, histograms), and a ProgressReporter — all optional and near-free
// when absent. Trace records carry simulated time only, so same-seed runs
// emit byte-identical traces.

// ObsOptions bundles the telemetry hooks of a simulation run.
type ObsOptions = obs.Options

// Tracer consumes simulation trace events.
type Tracer = obs.Tracer

// TraceEvent is one simulation trace record.
type TraceEvent = obs.Event

// TraceEventKind enumerates the traced decision points.
type TraceEventKind = obs.EventKind

// Trace event kinds (see internal/obs for detail semantics).
const (
	EvArrive        = obs.EvArrive
	EvEnqueue       = obs.EvEnqueue
	EvStart         = obs.EvStart
	EvBackfillStart = obs.EvBackfillStart
	EvFinish        = obs.EvFinish
	EvKill          = obs.EvKill
	EvRequeue       = obs.EvRequeue
	EvPin           = obs.EvPin
	EvUnrunnable    = obs.EvUnrunnable
	EvReserve       = obs.EvReserve
	EvReserveClear  = obs.EvReserveClear
	EvWindowUp      = obs.EvWindowUp
	EvWindowDown    = obs.EvWindowDown
	EvNodeFail      = obs.EvNodeFail
	EvNodeRepair    = obs.EvNodeRepair
	EvBrownout      = obs.EvBrownout
	EvAbandon       = obs.EvAbandon

	// Durability events: checkpoints, resumes, invariant violations, and
	// sweep-cell panics.
	EvCheckpointSave     = obs.EvCheckpointSave
	EvCheckpointRestore  = obs.EvCheckpointRestore
	EvInvariantViolation = obs.EvInvariantViolation
	EvCellPanic          = obs.EvCellPanic
)

// TraceEventKindByName resolves a trace-record "ev" name to its kind.
var TraceEventKindByName = obs.KindByName

// TagRunTracer wraps a tracer so every event carries the given run ID.
var TagRunTracer = obs.TagRun

// NopTracer is the disabled tracer; its calls never allocate.
type NopTracer = obs.Nop

// MemTracer records events in memory for programmatic analysis.
type MemTracer = obs.Mem

// JSONLTracer streams events as JSON lines, buffered and race-safe.
type JSONLTracer = obs.JSONL

// NewJSONLTracer returns a JSONL tracer writing to w.
var NewJSONLTracer = obs.NewJSONL

// MetricsRegistry holds named counters, gauges, and histograms.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty registry.
var NewMetricsRegistry = obs.NewRegistry

// MetricsSnapshot is a point-in-time copy of a registry's metrics.
type MetricsSnapshot = obs.Snapshot

// ProgressReporter reports simulation progress and rate to a writer.
type ProgressReporter = obs.Progress

// NewProgressReporter returns a reporter writing at most once per
// interval.
var NewProgressReporter = obs.NewProgress

// MetricsSummaryTable renders a snapshot as a result table (the CLIs'
// telemetry summary).
var MetricsSummaryTable = experiments.MetricsSummary

// BuildInfo describes the running binary (module, Go version, VCS
// revision); it backs the CLIs' -version flag.
var BuildInfo = obs.BuildInfo

// EngineStats is the discrete-event engine's accounting snapshot.
type EngineStats = sim.Stats

// Run introspection: span-style wall-clock phase timers, a live status
// board, and an HTTP server exposing /metrics (Prometheus text),
// /status (JSON), and /debug/pprof — all observation-only, so runs with
// and without introspection stay byte-identical.

// SpanTimings accumulates named wall-clock phase timers; nil disables.
type SpanTimings = obs.Timings

// NewSpanTimings returns an empty span accumulator.
var NewSpanTimings = obs.NewTimings

// SpanSnapshot is one span name's aggregated timing.
type SpanSnapshot = obs.SpanSnapshot

// RunStatus is a live run-state board: the simulation loop and sweep
// runner publish into it; the introspection server serves it.
type RunStatus = obs.Status

// NewRunStatus returns an empty status board.
var NewRunStatus = obs.NewStatus

// SimStatus is one live simulation sample (/status "sim" section).
type SimStatus = obs.SimStatus

// PartitionStatus is one partition's live occupancy.
type PartitionStatus = obs.PartitionStatus

// StatusSnapshot is the full /status document.
type StatusSnapshot = obs.StatusSnapshot

// SweepLiveStatus is the live sweep section of /status.
type SweepLiveStatus = obs.SweepStatus

// CellLiveStatus is one sweep cell's live state.
type CellLiveStatus = obs.CellStatus

// ServeLiveStatus is the serving daemon's /status section.
type ServeLiveStatus = obs.ServeStatus

// LatencyStat is one lifecycle stage's percentile summary.
type LatencyStat = obs.LatencyStat

// Structured logging (internal/obs): leveled key=value or JSON log
// lines with bound-attribute correlation (run_id, req_id). A nil
// *Logger is the disabled logger — every call is an allocation-free
// no-op.

// Logger is the structured leveled logger.
type Logger = obs.Logger

// NewLogger returns a logger writing lines at or above min to w.
var NewLogger = obs.NewLogger

// LogLevel orders log severities.
type LogLevel = obs.Level

// Log levels, least to most severe.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// ParseLogLevel maps "debug", "info", "warn", or "error" to a LogLevel.
var ParseLogLevel = obs.ParseLevel

// LogFormat selects the log line encoding (logfmt or JSON).
type LogFormat = obs.LogFormat

// ParseLogFormat maps "logfmt" or "json" to a LogFormat.
var ParseLogFormat = obs.ParseLogFormat

// TimeSeries is the in-process sample ring behind /v1/timeseries.
type TimeSeries = obs.TimeSeries

// NewTimeSeries builds a ring of capacity samples taken every interval.
var NewTimeSeries = obs.NewTimeSeries

// TimeSeriesSnapshot is the /v1/timeseries JSON document.
type TimeSeriesSnapshot = obs.TimeSeriesSnapshot

// SampleStatus builds a TimeSeries sampler reading a status board and
// registry.
var SampleStatus = obs.SampleStatus

// Introspection is the live HTTP server.
type Introspection = obs.Introspection

// StartIntrospection serves /metrics, /status, /v1/timeseries, and
// /debug/pprof on addr.
var StartIntrospection = obs.StartIntrospection

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format.
var WritePrometheus = obs.WritePrometheus

// SpanSummaryTable renders span timings as a result table.
var SpanSummaryTable = experiments.SpanSummary

// TraceFile is an atomically-written JSONL trace sink; a ".gz" path is
// transparently compressed.
type TraceFile = obs.TraceFile

// CreateTraceFile starts an atomic trace write.
var CreateTraceFile = obs.CreateTraceFile

// OpenTraceReader wraps a trace stream, transparently decompressing
// gzip input.
var OpenTraceReader = obs.OpenTraceReader

// TraceScanner streams TraceEvents out of a JSONL trace.
type TraceScanner = obs.TraceScanner

// NewTraceScanner reads trace records from an uncompressed stream.
var NewTraceScanner = obs.NewTraceScanner

// ReadTraceEvents streams every event of a (possibly gzipped) JSONL
// trace through a callback.
var ReadTraceEvents = obs.ReadTrace

// Binary columnar traces (internal/tracebin): the .zct format.

// TraceSink is a committable trace destination: a Tracer whose output
// lands atomically on Commit and vanishes on Abort. Both the JSONL and
// .zct file sinks satisfy it.
type TraceSink = tracebin.Sink

// CreateTraceSink starts an atomic trace write in the format the path
// suffix selects: ".zct" is binary columnar, anything else JSONL (".gz"
// compressed). All trace readers sniff content, so either output feeds
// the same analyses.
var CreateTraceSink = tracebin.CreateSink

// AnyTraceScanner streams events out of any trace input — .zct, JSONL,
// or either gzipped — by content sniffing.
type AnyTraceScanner = tracebin.Scanner

// NewAnyTraceScanner sniffs a trace stream and returns a scanner for it.
var NewAnyTraceScanner = tracebin.NewScanner

// ReadAnyTrace streams every event of a trace in any supported format
// through a callback, with memory bounded by one block.
var ReadAnyTrace = tracebin.ReadAny

// Trace analysis (cmd/zcctrace): post-process traces in any supported
// format into the paper's time-resolved views.

// TraceSummary is a whole-trace digest.
type TraceSummary = traceview.Summary

// SummarizeTrace digests a trace stream.
var SummarizeTrace = traceview.Summarize

// SummarizeTraceFile digests a trace file, fanning .zct block decodes
// across up to jobs goroutines; output is identical to SummarizeTrace.
var SummarizeTraceFile = traceview.SummarizeFile

// TraceSeries is a queue/utilization time series sampled from a trace.
type TraceSeries = traceview.Series

// TraceSeriesPoint is one sample of a TraceSeries.
type TraceSeriesPoint = traceview.SeriesPoint

// BuildTraceSeries samples a trace's reconstructed state every step.
var BuildTraceSeries = traceview.BuildSeries

// BuildTraceSeriesFile samples a trace file, fanning .zct block work
// across up to jobs goroutines; output is identical to BuildTraceSeries.
var BuildTraceSeriesFile = traceview.BuildSeriesFile

// TraceWaits is the wait-time breakdown by size bin and on-time class.
type TraceWaits = traceview.Waits

// TraceWaitBin is one cut of the breakdown.
type TraceWaitBin = traceview.WaitBin

// BuildTraceWaits derives wait-time cuts from a trace.
var BuildTraceWaits = traceview.BuildWaits

// TraceJobTimeline returns every event of one job, in trace order.
var TraceJobTimeline = traceview.JobTimeline

// TraceDiffResult locates the first difference between two traces.
type TraceDiffResult = traceview.DiffResult

// DiffTraces compares two traces event-for-event and reports the first
// divergence.
var DiffTraces = traceview.Diff
